//! Model and training configuration, including the paper's ablations.

use groupsa_graph::social::Closeness;
use groupsa_json::{impl_json_enum, impl_json_struct};

/// Which components of GroupSA are enabled — the ablation axes of
/// paper §V-A/§V-B. The full model enables everything.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Ablation {
    /// The stacked self-attention voting network (§II-C). When off, the
    /// item-conditioned vanilla attention aggregates raw member
    /// embeddings directly.
    pub voting: bool,
    /// The social bias mask of Eq. (4)–(5). When off (but `voting` on),
    /// members attend to *all* co-members — plain self-attention.
    pub social_mask: bool,
    /// Item aggregation in user modeling (Eq. 11–14).
    pub item_aggregation: bool,
    /// Social aggregation in user modeling (Eq. 15–18).
    pub social_aggregation: bool,
    /// Stage-1 training on user-item data with shared embeddings
    /// (§II-E). When off, only group-item interactions are used.
    pub joint_training: bool,
}

impl_json_struct!(Ablation { voting, social_mask, item_aggregation, social_aggregation, joint_training });

impl Ablation {
    /// The full GroupSA model.
    pub fn full() -> Self {
        Self {
            voting: true,
            social_mask: true,
            item_aggregation: true,
            social_aggregation: true,
            joint_training: true,
        }
    }

    /// **Group-A**: no voting scheme and no user modeling — only the
    /// vanilla attention aggregates member preferences.
    pub fn group_a() -> Self {
        Self { voting: false, item_aggregation: false, social_aggregation: false, ..Self::full() }
    }

    /// **Group-S**: the social self-attention network is removed; only
    /// the vanilla attention performs preference aggregation (user
    /// modeling stays).
    pub fn group_s() -> Self {
        Self { voting: false, ..Self::full() }
    }

    /// **Group-I**: item aggregation removed from user modeling.
    pub fn group_i() -> Self {
        Self { item_aggregation: false, ..Self::full() }
    }

    /// **Group-F**: social aggregation removed from user modeling.
    pub fn group_f() -> Self {
        Self { social_aggregation: false, ..Self::full() }
    }

    /// **Group-G**: the user-item recommendation component is removed;
    /// only group-item interactions train the model.
    pub fn group_g() -> Self {
        Self { joint_training: false, ..Self::full() }
    }

    /// `true` when user modeling contributes anything (at least one
    /// aggregation branch is on).
    pub fn user_modeling(&self) -> bool {
        self.item_aggregation || self.social_aggregation
    }
}

/// What feeds the first voting layer (`X⁰` of paper §II-C).
///
/// [`VotingInput::Embedding`] is the paper's choice (footnote 2: "the
/// input of the j-th user is denoted as emb_j^U") and the default —
/// empirically it also trains far more stably, because the raw
/// embedding table is a slowly-moving target during group fine-tuning.
/// [`VotingInput::Enhanced`] feeds the user-modeling latent `h_j`
/// instead (one possible reading of §II-F); it is kept for the
/// ablation benches but converges worse at this scale.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum VotingInput {
    /// Raw shared user embeddings `embᵁ`.
    Embedding,
    /// The user-modeling latent factor `h_j` (Eq. 19), falling back to
    /// `embᵁ` for users with no history or when user modeling is
    /// ablated.
    Enhanced,
}

impl_json_enum!(VotingInput { Embedding, Enhanced });

/// Hyper-parameters of GroupSA and its training procedure.
///
/// Defaults follow §III-E: embeddings of dimension 32 for users, items
/// and groups; `d_k = d_v = d_model = 32`; dropout 0.1; Adam; and the
/// paper's operating choices `N_X = 1`, `N = 1`, `wᵘ = 0.9`, Top-H = 5.
#[derive(Clone, Debug)]
pub struct GroupSaConfig {
    /// Embedding and attention width (`d_model = d_k = d_v`).
    pub embed_dim: usize,
    /// Width of queries/keys in the self-attention.
    pub d_k: usize,
    /// Hidden width of the position-wise FFN.
    pub d_ff: usize,
    /// `N_X`: number of stacked self-attention (voting) layers.
    pub num_voting_layers: usize,
    /// Top-H items/friends aggregated in user modeling.
    pub top_h: usize,
    /// `N`: negatives sampled per positive during training.
    pub num_negatives: usize,
    /// `wᵘ`: blend of the latent-factor score into the user score
    /// (Eq. 23).
    pub w_u: f32,
    /// Dropout probability on attention/FFN sub-layers.
    pub dropout: f32,
    /// Adam learning rate.
    pub learning_rate: f32,
    /// L2 weight decay λ (Eq. 21/24).
    pub weight_decay: f32,
    /// Gradient-accumulation mini-batch: examples per optimizer step
    /// (the paper trains with mini-batches of 256; smaller batches
    /// trade step cost for faster convergence at this scale).
    pub batch_size: usize,
    /// Epochs over the user-item training pairs (stage 1).
    pub user_epochs: usize,
    /// Epochs over the group-item training pairs (stage 2).
    pub group_epochs: usize,
    /// Groups larger than this are truncated for the attention stack
    /// (keeps the `l×l` attention bounded).
    pub max_group_size: usize,
    /// Closeness function `f(i,j)` of Eq. (5).
    pub closeness: Closeness,
    /// What feeds the first voting layer (see [`VotingInput`]).
    pub voting_input: VotingInput,
    /// Lean group head: the group representation is the γ-weighted sum
    /// of member representations (Eq. 8) fed *directly* to the shared
    /// user/group prediction tower. The paper-literal head (`false`)
    /// adds the affine+ReLU projection of Eq. (7) and a separate group
    /// tower — which needs far more group-item data than exists at this
    /// reproduction's scale: the projection throws the representation
    /// out of the (well-trained) tower's input distribution, and the
    /// separate tower must relearn affinity from a few thousand pairs
    /// (DESIGN.md §3 records this substitution).
    pub lean_group_head: bool,
    /// Component switches (paper ablations).
    pub ablation: Ablation,
    /// Seed for parameter init, dropout and sampling.
    pub seed: u64,
}

impl_json_struct!(GroupSaConfig {
    embed_dim,
    d_k,
    d_ff,
    num_voting_layers,
    top_h,
    num_negatives,
    w_u,
    dropout,
    learning_rate,
    weight_decay,
    batch_size,
    user_epochs,
    group_epochs,
    max_group_size,
    closeness,
    voting_input,
    lean_group_head,
    ablation,
    seed,
});

impl GroupSaConfig {
    /// The paper's operating configuration (§III-E and §V-C).
    pub fn paper() -> Self {
        Self {
            embed_dim: 32,
            d_k: 32,
            d_ff: 32,
            num_voting_layers: 1,
            top_h: 5,
            num_negatives: 3,
            w_u: 0.9,
            dropout: 0.1,
            learning_rate: 0.01,
            weight_decay: 1e-6,
            batch_size: 16,
            user_epochs: 24,
            group_epochs: 100,
            max_group_size: 15,
            closeness: Closeness::Direct,
            voting_input: VotingInput::Embedding,
            lean_group_head: true,
            ablation: Ablation::full(),
            seed: 0x6752_5341, // "GRSA"
        }
    }

    /// A tiny configuration for unit tests: narrow model, few epochs.
    pub fn tiny() -> Self {
        Self {
            embed_dim: 8,
            d_k: 8,
            d_ff: 8,
            num_voting_layers: 1,
            top_h: 3,
            num_negatives: 1,
            w_u: 0.7,
            dropout: 0.0,
            learning_rate: 0.02,
            weight_decay: 0.0,
            batch_size: 4,
            user_epochs: 3,
            group_epochs: 5,
            max_group_size: 10,
            closeness: Closeness::Direct,
            voting_input: VotingInput::Embedding,
            lean_group_head: true,
            ablation: Ablation::full(),
            seed: 1,
        }
    }

    /// Returns a copy with the given ablation applied.
    pub fn with_ablation(mut self, ablation: Ablation) -> Self {
        self.ablation = ablation;
        self
    }

    /// Validates hyper-parameter sanity, describing the first problem.
    pub fn validate(&self) -> Result<(), String> {
        if self.embed_dim == 0 || self.d_k == 0 || self.d_ff == 0 {
            return Err("model widths must be positive".into());
        }
        if self.num_negatives == 0 {
            return Err("num_negatives must be at least 1".into());
        }
        if !(0.0..=1.0).contains(&self.w_u) {
            return Err(format!("w_u must be in [0,1], got {}", self.w_u));
        }
        if !(0.0..1.0).contains(&self.dropout) {
            return Err(format!("dropout must be in [0,1), got {}", self.dropout));
        }
        if self.batch_size == 0 {
            return Err("batch_size must be at least 1".into());
        }
        if self.max_group_size < 2 {
            return Err("max_group_size must be at least 2".into());
        }
        if self.ablation.voting && self.num_voting_layers == 0 {
            return Err("voting enabled but num_voting_layers is 0".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_config_is_valid() {
        assert_eq!(GroupSaConfig::paper().validate(), Ok(()));
        assert_eq!(GroupSaConfig::tiny().validate(), Ok(()));
    }

    #[test]
    fn paper_hyperparameters_match_section_3e() {
        let c = GroupSaConfig::paper();
        assert_eq!(c.embed_dim, 32);
        assert_eq!(c.d_k, 32);
        assert_eq!(c.d_ff, 32);
        assert_eq!(c.num_voting_layers, 1); // N_X = 1 for Yelp (§V-C)
        // The paper operated at N = 1 for efficiency but found N = 3
        // best (Table VIII); our validation agrees, so the default is 3.
        assert_eq!(c.num_negatives, 3);
        assert!((c.w_u - 0.9).abs() < 1e-6); // Table VII optimum
        assert!((c.dropout - 0.1).abs() < 1e-6);
    }

    #[test]
    fn ablations_toggle_expected_components() {
        assert!(Ablation::full().user_modeling());
        let a = Ablation::group_a();
        assert!(!a.voting && !a.user_modeling() && a.joint_training);
        let s = Ablation::group_s();
        assert!(!s.voting && s.user_modeling());
        let i = Ablation::group_i();
        assert!(!i.item_aggregation && i.social_aggregation && i.user_modeling());
        let f = Ablation::group_f();
        assert!(f.item_aggregation && !f.social_aggregation && f.user_modeling());
        let g = Ablation::group_g();
        assert!(!g.joint_training && g.voting);
    }

    #[test]
    fn validation_catches_bad_values() {
        let mut c = GroupSaConfig::tiny();
        c.w_u = 1.5;
        assert!(c.validate().is_err());
        let mut c = GroupSaConfig::tiny();
        c.num_negatives = 0;
        assert!(c.validate().is_err());
        let mut c = GroupSaConfig::tiny();
        c.num_voting_layers = 0;
        assert!(c.validate().is_err(), "voting on with zero layers is inconsistent");
        c.ablation.voting = false;
        assert_eq!(c.validate(), Ok(()), "zero layers fine when voting is ablated");
    }

    #[test]
    fn with_ablation_preserves_other_fields() {
        let c = GroupSaConfig::paper().with_ablation(Ablation::group_s());
        assert_eq!(c.embed_dim, 32);
        assert_eq!(c.ablation, Ablation::group_s());
    }
}
