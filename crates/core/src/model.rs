//! The GroupSA parameter set and its scoring interfaces.

use crate::config::GroupSaConfig;
use crate::context::DataContext;
use groupsa_eval::Scorer;
use groupsa_nn::{
    Embedding, Init, Linear, Mlp, ParamStore, TransformerLayer, VanillaAttention,
};
use groupsa_tensor::rng::seeded;
use groupsa_tensor::Graph;

/// The GroupSA model: four embedding tables, the user-modeling
/// aggregators, the stacked social self-attention voting network, and
/// two prediction towers, all registered in one [`ParamStore`].
///
/// | field | paper symbol | role |
/// |---|---|---|
/// | `emb_user` | `embᵁ` | shared user embedding (user-item space) |
/// | `emb_item` | `embⱽ` | shared item embedding |
/// | `lat_item` | `xⱽ` | item latent factor in item-space (Eq. 11) |
/// | `lat_social` | `xˢ` | user latent factor in social-space (Eq. 15) |
/// | `item_att`, `item_agg_out` | `α`, Eq. 11–14 | item aggregation |
/// | `social_att`, `social_agg_out` | `β`, Eq. 15–18 | social aggregation |
/// | `fusion` | Eq. 19 | combines `hⱽ ⊕ hˢ → h` |
/// | `voting` | Eq. 1–6 | `N_X` social self-attention rounds |
/// | `group_att`, `group_out` | `γ`, Eq. 7–10 | member-preference aggregation |
/// | `pred_user` | Eq. 22 | user ranking tower (shared by r₁ and r₂) |
/// | `pred_group` | Eq. 20 | group ranking tower |
///
/// Implementation note (recorded in DESIGN.md): the prediction towers
/// and the member attention γ receive `[a ⊕ b ⊕ a⊙b]` instead of the
/// paper's bare concatenation `[a ⊕ b]`. A concatenation-only MLP
/// cannot learn a similarity function from the few thousand group-item
/// pairs available at this reproduction's scale; the element-wise
/// product (the standard NeuMF/GMF feature) makes the affinity
/// expressible directly and affects the user and group towers
/// identically, so method comparisons stay fair.
pub struct GroupSa {
    pub(crate) cfg: GroupSaConfig,
    pub(crate) store: ParamStore,
    pub(crate) emb_user: Embedding,
    pub(crate) emb_item: Embedding,
    pub(crate) lat_item: Embedding,
    pub(crate) lat_social: Embedding,
    pub(crate) item_att: VanillaAttention,
    pub(crate) item_agg_out: Linear,
    pub(crate) social_att: VanillaAttention,
    pub(crate) social_agg_out: Linear,
    pub(crate) fusion: Mlp,
    pub(crate) voting: Vec<TransformerLayer>,
    pub(crate) group_att: VanillaAttention,
    pub(crate) group_out: Linear,
    pub(crate) pred_user: Mlp,
    pub(crate) pred_group: Mlp,
}

impl GroupSa {
    /// Builds a freshly initialised model for `num_users` × `num_items`
    /// (Glorot embeddings, Gaussian(0, 0.1) hidden layers — §III-E).
    ///
    /// # Panics
    /// If the configuration fails [`GroupSaConfig::validate`].
    pub fn new(cfg: GroupSaConfig, num_users: usize, num_items: usize) -> Self {
        if let Err(e) = cfg.validate() {
            // lint: allow(panic-reach) — documented `# Panics` contract; model-build time, never per request
            panic!("invalid GroupSaConfig: {e}");
        }
        let mut rng = seeded(cfg.seed);
        let mut store = ParamStore::new();
        let d = cfg.embed_dim;

        let emb_user = Embedding::new(&mut store, &mut rng, "emb_user", num_users, d, Init::Glorot);
        let emb_item = Embedding::new(&mut store, &mut rng, "emb_item", num_items, d, Init::Glorot);
        let lat_item = Embedding::new(&mut store, &mut rng, "lat_item", num_items, d, Init::Glorot);
        let lat_social = Embedding::new(&mut store, &mut rng, "lat_social", num_users, d, Init::Glorot);

        let item_att = VanillaAttention::new(&mut store, &mut rng, "item_att", 2 * d, d);
        let item_agg_out = Linear::new(&mut store, &mut rng, "item_agg_out", d, d, Init::PAPER_HIDDEN);
        let social_att = VanillaAttention::new(&mut store, &mut rng, "social_att", 2 * d, d);
        let social_agg_out = Linear::new(&mut store, &mut rng, "social_agg_out", d, d, Init::PAPER_HIDDEN);
        let fusion = Mlp::new(&mut store, &mut rng, "fusion", &[2 * d, d, d], true);

        let voting = (0..cfg.num_voting_layers)
            .map(|i| TransformerLayer::new(&mut store, &mut rng, &format!("vote{i}"), d, cfg.d_k, cfg.d_ff, cfg.dropout))
            .collect();
        let group_att = VanillaAttention::new(&mut store, &mut rng, "group_att", 3 * d, d);
        let group_out = Linear::new(&mut store, &mut rng, "group_out", d, d, Init::PAPER_HIDDEN);

        let pred_user = Mlp::new(&mut store, &mut rng, "pred_user", &[3 * d, d, 1], false);
        let pred_group = Mlp::new(&mut store, &mut rng, "pred_group", &[3 * d, d, 1], false);

        Self {
            cfg,
            store,
            emb_user,
            emb_item,
            lat_item,
            lat_social,
            item_att,
            item_agg_out,
            social_att,
            social_agg_out,
            fusion,
            voting,
            group_att,
            group_out,
            pred_user,
            pred_group,
        }
    }

    /// The model configuration.
    pub fn config(&self) -> &GroupSaConfig {
        &self.cfg
    }

    /// The parameter store (read access, e.g. for reporting).
    pub fn store(&self) -> &ParamStore {
        &self.store
    }

    /// The parameter store (mutable, used by the trainer).
    pub fn store_mut(&mut self) -> &mut ParamStore {
        &mut self.store
    }

    /// Total scalar parameter count.
    pub fn num_parameters(&self) -> usize {
        self.store.num_scalars()
    }

    /// Gradient-free user-task scores for `items` (Eq. 23): evaluates
    /// the training graph with dropout disabled.
    pub fn score_user_items(&self, ctx: &DataContext, user: usize, items: &[usize]) -> Vec<f32> {
        let mut g = Graph::new();
        let scores = self.user_scores_graph(&mut g, ctx, user, items);
        g.value(scores).as_slice().to_vec()
    }

    /// Gradient-free group-task scores for `items` (Eq. 20).
    pub fn score_group_items(&self, ctx: &DataContext, group: usize, items: &[usize]) -> Vec<f32> {
        let mut g = Graph::new();
        let mut rng = seeded(0); // dropout disabled; rng unused
        let scores = self.group_scores_graph(&mut g, &mut rng, ctx, group, items, false);
        g.value(scores).as_slice().to_vec()
    }

    /// An [`Scorer`] over users for the evaluation protocol.
    pub fn user_scorer<'a>(&'a self, ctx: &'a DataContext) -> impl Scorer + 'a {
        move |user: usize, items: &[usize]| self.score_user_items(ctx, user, items)
    }

    /// A [`Scorer`] over groups (the full voting-scheme path).
    pub fn group_scorer<'a>(&'a self, ctx: &'a DataContext) -> impl Scorer + 'a {
        move |group: usize, items: &[usize]| self.score_group_items(ctx, group, items)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Ablation;
    use crate::test_fixtures::tiny_world;

    #[test]
    fn construction_registers_all_components() {
        let (d, ctx) = tiny_world(7);
        let model = GroupSa::new(GroupSaConfig::tiny(), d.num_users, d.num_items);
        // 4 embedding tables plus towers: parameter count must cover at
        // least the tables.
        let d8 = 8;
        let min = (d.num_users * d8) * 2 + (d.num_items * d8) * 2;
        assert!(model.num_parameters() > min, "{} params", model.num_parameters());
        assert_eq!(model.voting.len(), 1);
        drop(ctx);
    }

    #[test]
    #[should_panic(expected = "invalid GroupSaConfig")]
    fn invalid_config_panics() {
        let mut cfg = GroupSaConfig::tiny();
        cfg.w_u = 2.0;
        let _ = GroupSa::new(cfg, 10, 10);
    }

    #[test]
    fn scoring_is_deterministic_and_finite() {
        let (d, ctx) = tiny_world(7);
        let model = GroupSa::new(GroupSaConfig::tiny(), d.num_users, d.num_items);
        let items = [0usize, 1, 2, 3];
        let a = model.score_user_items(&ctx, 0, &items);
        let b = model.score_user_items(&ctx, 0, &items);
        assert_eq!(a, b);
        assert!(a.iter().all(|x| x.is_finite()));
        let ga = model.score_group_items(&ctx, 0, &items);
        let gb = model.score_group_items(&ctx, 0, &items);
        assert_eq!(ga, gb);
        assert!(ga.iter().all(|x| x.is_finite()));
        assert_eq!(ga.len(), items.len());
    }

    #[test]
    fn different_users_get_different_scores() {
        let (d, ctx) = tiny_world(7);
        let model = GroupSa::new(GroupSaConfig::tiny(), d.num_users, d.num_items);
        let items = [0usize, 1, 2];
        assert_ne!(model.score_user_items(&ctx, 0, &items), model.score_user_items(&ctx, 1, &items));
    }

    #[test]
    fn ablated_variants_still_score() {
        let (d, _) = tiny_world(7);
        for ab in [
            Ablation::group_a(),
            Ablation::group_s(),
            Ablation::group_i(),
            Ablation::group_f(),
            Ablation::group_g(),
        ] {
            let cfg = GroupSaConfig::tiny().with_ablation(ab);
            let ctx = crate::context::DataContext::from_train_view(&d, &cfg);
            let model = GroupSa::new(cfg, d.num_users, d.num_items);
            let s = model.score_group_items(&ctx, 0, &[0, 1]);
            assert_eq!(s.len(), 2);
            assert!(s.iter().all(|x| x.is_finite()), "{ab:?}");
            let u = model.score_user_items(&ctx, 0, &[0, 1]);
            assert!(u.iter().all(|x| x.is_finite()), "{ab:?}");
        }
    }
}
