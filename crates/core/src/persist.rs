//! Model persistence: checkpointing a trained GroupSA to disk.
//!
//! A checkpoint stores the configuration and every parameter's name and
//! value (optimizer state is not persisted — checkpoints are for
//! inference and warm starts, not exact training resumption).

use crate::config::GroupSaConfig;
use crate::model::GroupSa;
use groupsa_json::impl_json_struct;
use groupsa_tensor::Matrix;
use std::io;
use std::path::Path;

/// On-disk representation of a trained model.
pub struct Checkpoint {
    /// Format version for forward compatibility.
    pub version: u32,
    /// The model configuration (architecture must match to load).
    pub config: GroupSaConfig,
    /// Number of users the model was built for.
    pub num_users: usize,
    /// Number of items the model was built for.
    pub num_items: usize,
    /// `(parameter name, value)` in registration order.
    pub parameters: Vec<(String, Matrix)>,
}

impl_json_struct!(Checkpoint { version, config, num_users, num_items, parameters });

/// Current checkpoint format version.
pub const CHECKPOINT_VERSION: u32 = 1;

impl GroupSa {
    /// Serialises the model into a [`Checkpoint`].
    pub fn to_checkpoint(&self, num_users: usize, num_items: usize) -> Checkpoint {
        Checkpoint {
            version: CHECKPOINT_VERSION,
            config: self.config().clone(),
            num_users,
            num_items,
            parameters: self
                .store()
                .iter()
                .map(|p| (p.name().to_string(), p.value.clone()))
                .collect(),
        }
    }

    /// Writes a JSON checkpoint to `path`.
    pub fn save(&self, path: impl AsRef<Path>, num_users: usize, num_items: usize) -> io::Result<()> {
        let json = groupsa_json::to_string(&self.to_checkpoint(num_users, num_items));
        std::fs::write(path, json)
    }

    /// Rebuilds a model from a [`Checkpoint`].
    ///
    /// # Errors
    /// If the version is unknown or the parameter list does not match
    /// the architecture implied by the stored configuration.
    pub fn from_checkpoint(ckpt: Checkpoint) -> Result<Self, String> {
        if ckpt.version != CHECKPOINT_VERSION {
            return Err(format!("unsupported checkpoint version {}", ckpt.version));
        }
        let mut model = GroupSa::new(ckpt.config, ckpt.num_users, ckpt.num_items);
        if model.store().len() != ckpt.parameters.len() {
            return Err(format!(
                "parameter count mismatch: model has {}, checkpoint has {}",
                model.store().len(),
                ckpt.parameters.len()
            ));
        }
        for (slot, (name, value)) in ckpt.parameters.into_iter().enumerate() {
            let p = model.store_mut().get_mut(slot);
            if p.name() != name {
                return Err(format!("parameter {slot} name mismatch: model '{}', checkpoint '{name}'", p.name()));
            }
            if p.value.shape() != value.shape() {
                return Err(format!(
                    "parameter '{name}' shape mismatch: model {:?}, checkpoint {:?}",
                    p.value.shape(),
                    value.shape()
                ));
            }
            p.value = value;
        }
        Ok(model)
    }

    /// Loads a JSON checkpoint written by [`GroupSa::save`].
    pub fn load(path: impl AsRef<Path>) -> io::Result<Self> {
        let json = std::fs::read_to_string(path)?;
        let ckpt: Checkpoint = groupsa_json::from_str(&json).map_err(io::Error::other)?;
        Self::from_checkpoint(ckpt).map_err(io::Error::other)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::GroupSaConfig;
    use crate::test_fixtures::tiny_world;
    use crate::train::Trainer;

    #[test]
    fn save_load_roundtrip_preserves_scores() {
        let (d, ctx) = tiny_world(41);
        let mut cfg = GroupSaConfig::tiny();
        cfg.user_epochs = 2;
        cfg.group_epochs = 2;
        let mut model = GroupSa::new(cfg.clone(), d.num_users, d.num_items);
        Trainer::new(cfg).fit(&mut model, &ctx);

        let dir = std::env::temp_dir().join("groupsa-persist-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("model.json");
        model.save(&path, d.num_users, d.num_items).unwrap();

        let loaded = GroupSa::load(&path).unwrap();
        let items = [0usize, 1, 2, 3];
        assert_eq!(model.score_user_items(&ctx, 0, &items), loaded.score_user_items(&ctx, 0, &items));
        assert_eq!(model.score_group_items(&ctx, 0, &items), loaded.score_group_items(&ctx, 0, &items));
    }

    #[test]
    fn mismatched_universe_is_rejected() {
        let (d, _) = tiny_world(42);
        let model = GroupSa::new(GroupSaConfig::tiny(), d.num_users, d.num_items);
        let mut ckpt = model.to_checkpoint(d.num_users, d.num_items);
        ckpt.num_users += 5; // architecture no longer matches parameters
        assert!(matches!(GroupSa::from_checkpoint(ckpt), Err(_)));
    }

    #[test]
    fn unknown_version_is_rejected() {
        let (d, _) = tiny_world(43);
        let model = GroupSa::new(GroupSaConfig::tiny(), d.num_users, d.num_items);
        let mut ckpt = model.to_checkpoint(d.num_users, d.num_items);
        ckpt.version = 99;
        let err = match GroupSa::from_checkpoint(ckpt) {
            Err(e) => e,
            Ok(_) => panic!("expected version error"),
        };
        assert!(err.contains("version"));
    }

    #[test]
    fn checkpoint_parameter_names_are_stable() {
        let (d, _) = tiny_world(44);
        let model = GroupSa::new(GroupSaConfig::tiny(), d.num_users, d.num_items);
        let ckpt = model.to_checkpoint(d.num_users, d.num_items);
        let names: Vec<&str> = ckpt.parameters.iter().map(|(n, _)| n.as_str()).collect();
        for expected in ["emb_user.table", "emb_item.table", "lat_item.table", "lat_social.table"] {
            assert!(names.contains(&expected), "missing {expected}");
        }
    }
}
