//! High-level Top-K recommendation facade.
//!
//! The scorers in [`crate::model`] rank *given* candidate lists (the
//! evaluation protocol's shape); downstream users mostly want "give me
//! the Top-K items for this group, excluding what it already did" —
//! this module provides that.

use crate::context::DataContext;
use crate::fast::ScoreAggregation;
use crate::model::GroupSa;
use groupsa_json::impl_json_struct;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// One recommendation: an item and its ranking score.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Recommendation {
    /// Recommended item id.
    pub item: usize,
    /// Raw ranking score (higher = better; comparable within one list).
    pub score: f32,
}

impl_json_struct!(Recommendation { item, score });

/// Which inference path produces group recommendations.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum GroupMode {
    /// The full voting-scheme path (Eq. 1–10, 20).
    Voting,
    /// The fast §II-F path with the given member-score aggregation.
    Fast(ScoreAggregation),
}

/// Ascending score order made total: NaN sorts below every real score
/// (including `-inf`), and NaN compares equal to NaN. A corrupt score
/// therefore sinks deterministically instead of panicking — a serving
/// thread must survive whatever the towers produce.
fn score_cmp(a: f32, b: f32) -> Ordering {
    match (a.is_nan(), b.is_nan()) {
        (true, true) => Ordering::Equal,
        (true, false) => Ordering::Less,
        (false, true) => Ordering::Greater,
        (false, false) => a.partial_cmp(&b).expect("both scores are non-NaN"),
    }
}

/// Ranking order: `Less` means `a` is listed before `b` — descending
/// score, ties broken by ascending item id for determinism.
fn rank_cmp(a: &Recommendation, b: &Recommendation) -> Ordering {
    score_cmp(b.score, a.score).then(a.item.cmp(&b.item))
}

/// Max-heap entry ordered by [`rank_cmp`], so the heap's top is the
/// *worst* recommendation currently kept.
struct Ranked(Recommendation);

impl PartialEq for Ranked {
    fn eq(&self, other: &Self) -> bool {
        rank_cmp(&self.0, &other.0) == Ordering::Equal
    }
}

impl Eq for Ranked {}

impl PartialOrd for Ranked {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Ranked {
    fn cmp(&self, other: &Self) -> Ordering {
        rank_cmp(&self.0, &other.0)
    }
}

/// A streaming bounded-heap Top-K accumulator: push `(item, score)`
/// pairs as they are produced, read the ranked result at the end.
///
/// This is the fused score+select primitive of the serve scan — the
/// scorer pushes each candidate the moment its score exists, so no
/// full `Vec<Recommendation>` of the whole catalog is ever
/// materialised. Pushing the same sequence [`top_k`] would consume
/// yields the same heap states and therefore the identical result.
pub struct TopK {
    k: usize,
    heap: BinaryHeap<Ranked>,
}

impl TopK {
    /// An empty accumulator keeping the best `k` entries.
    pub fn new(k: usize) -> Self {
        Self { k, heap: BinaryHeap::with_capacity(k.saturating_add(1).min(4096)) }
    }

    /// Offers one candidate; kept only while it ranks among the best
    /// `k` seen so far.
    #[inline]
    pub fn push(&mut self, item: usize, score: f32) {
        if self.k == 0 {
            return;
        }
        let rec = Recommendation { item, score };
        if self.heap.len() < self.k {
            self.heap.push(Ranked(rec));
        } else if let Some(worst) = self.heap.peek() {
            if rank_cmp(&rec, &worst.0) == Ordering::Less {
                self.heap.pop();
                self.heap.push(Ranked(rec));
            }
        }
    }

    /// Entries currently held (≤ `k`).
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// `true` while nothing has been kept.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// The ranked result: descending score, ties broken by ascending
    /// item id.
    pub fn into_sorted(self) -> Vec<Recommendation> {
        let mut out: Vec<Recommendation> = self.heap.into_iter().map(|r| r.0).collect();
        out.sort_unstable_by(rank_cmp);
        out
    }
}

/// Best-`k` selection in O(n log k): a bounded heap of the `k` best
/// candidates seen so far replaces the previous full sort + truncate.
/// Output order is descending score with ties broken by ascending item
/// id; NaN scores never panic and can only appear (last) when fewer
/// than `k` real scores exist.
pub fn top_k(scored: Vec<Recommendation>, k: usize) -> Vec<Recommendation> {
    let mut acc = TopK::new(k);
    for rec in scored {
        acc.push(rec.item, rec.score);
    }
    acc.into_sorted()
}

impl GroupSa {
    /// Top-K items for a user, excluding their training interactions.
    ///
    /// # Panics
    /// If `user` is out of range.
    pub fn recommend_for_user(&self, ctx: &DataContext, user: usize, k: usize) -> Vec<Recommendation> {
        let candidates: Vec<usize> = (0..ctx.num_items)
            .filter(|&i| !ctx.user_item_graph.has_interaction(user, i))
            .collect();
        if candidates.is_empty() {
            return Vec::new();
        }
        let scores = self.score_user_items(ctx, user, &candidates);
        top_k(
            candidates
                .into_iter()
                .zip(scores)
                .map(|(item, score)| Recommendation { item, score })
                .collect(),
            k,
        )
    }

    /// Top-K items for a group, excluding its training interactions.
    ///
    /// # Panics
    /// If `group` is out of range.
    pub fn recommend_for_group(&self, ctx: &DataContext, group: usize, k: usize, mode: GroupMode) -> Vec<Recommendation> {
        let candidates: Vec<usize> = (0..ctx.num_items)
            .filter(|&i| !ctx.group_item_graph.has_interaction(group, i))
            .collect();
        if candidates.is_empty() {
            return Vec::new();
        }
        let scores = match mode {
            GroupMode::Voting => self.score_group_items(ctx, group, &candidates),
            GroupMode::Fast(agg) => self.fast_group_scores(ctx, group, &candidates, agg),
        };
        top_k(
            candidates
                .into_iter()
                .zip(scores)
                .map(|(item, score)| Recommendation { item, score })
                .collect(),
            k,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::GroupSaConfig;
    use crate::test_fixtures::tiny_world;

    #[test]
    fn user_recommendations_exclude_history_and_are_sorted() {
        let (d, ctx) = tiny_world(51);
        let model = GroupSa::new(GroupSaConfig::tiny(), d.num_users, d.num_items);
        let recs = model.recommend_for_user(&ctx, 0, 5);
        assert_eq!(recs.len(), 5);
        for r in &recs {
            assert!(!ctx.user_item_graph.has_interaction(0, r.item), "history must be excluded");
        }
        for w in recs.windows(2) {
            assert!(w[0].score >= w[1].score, "descending scores");
        }
    }

    #[test]
    fn group_recommendations_work_in_both_modes() {
        let (d, ctx) = tiny_world(52);
        let model = GroupSa::new(GroupSaConfig::tiny(), d.num_users, d.num_items);
        let voting = model.recommend_for_group(&ctx, 0, 3, GroupMode::Voting);
        let fast = model.recommend_for_group(&ctx, 0, 3, GroupMode::Fast(ScoreAggregation::Average));
        assert_eq!(voting.len(), 3);
        assert_eq!(fast.len(), 3);
        for r in voting.iter().chain(&fast) {
            assert!(!ctx.group_item_graph.has_interaction(0, r.item));
            assert!(r.score.is_finite());
        }
    }

    #[test]
    fn k_larger_than_candidates_returns_all() {
        let (d, ctx) = tiny_world(53);
        let model = GroupSa::new(GroupSaConfig::tiny(), d.num_users, d.num_items);
        let known = ctx.user_item_graph.user_activity(0);
        let recs = model.recommend_for_user(&ctx, 0, 10_000);
        assert_eq!(recs.len(), d.num_items - known);
    }

    #[test]
    fn ties_break_by_item_id_for_determinism() {
        let recs = top_k(
            vec![
                Recommendation { item: 9, score: 1.0 },
                Recommendation { item: 2, score: 1.0 },
                Recommendation { item: 5, score: 2.0 },
            ],
            3,
        );
        assert_eq!(recs[0].item, 5);
        assert_eq!(recs[1].item, 2, "tied scores order by ascending item id");
        assert_eq!(recs[2].item, 9);
    }

    #[test]
    fn nan_scores_sink_instead_of_panicking() {
        // Regression: the previous implementation panicked on NaN via
        // `partial_cmp(..).expect("scores are finite")`.
        let recs = top_k(
            vec![
                Recommendation { item: 0, score: f32::NAN },
                Recommendation { item: 1, score: 0.5 },
                Recommendation { item: 2, score: f32::NEG_INFINITY },
                Recommendation { item: 3, score: f32::NAN },
                Recommendation { item: 4, score: 1.5 },
            ],
            3,
        );
        let items: Vec<usize> = recs.iter().map(|r| r.item).collect();
        assert_eq!(items, vec![4, 1, 2], "NaN ranks below -inf and is displaced by real scores");

        // With k larger than the real scores, NaNs fill the tail in
        // item-id order.
        let recs = top_k(
            vec![
                Recommendation { item: 7, score: f32::NAN },
                Recommendation { item: 1, score: 0.5 },
                Recommendation { item: 3, score: f32::NAN },
            ],
            5,
        );
        let items: Vec<usize> = recs.iter().map(|r| r.item).collect();
        assert_eq!(items, vec![1, 3, 7]);
    }

    #[test]
    fn k_zero_returns_empty() {
        assert!(top_k(vec![Recommendation { item: 0, score: 1.0 }], 0).is_empty());
    }

    #[test]
    fn heap_selection_matches_full_sort_reference() {
        // Deterministic pseudo-random scores with duplicates, ±inf and
        // NaN sprinkled in; the bounded heap must agree with a full
        // sort under the same total order for every k.
        let scored: Vec<Recommendation> = (0..257)
            .map(|i| {
                let score = match i % 13 {
                    0 => f32::NAN,
                    1 => f32::INFINITY,
                    2 => f32::NEG_INFINITY,
                    r => (((i * 37 + 11) % 101) as f32 - 50.0) * 0.1 * r as f32,
                };
                Recommendation { item: i, score }
            })
            .collect();
        for k in [1, 2, 7, 64, 256, 300] {
            let mut reference = scored.clone();
            reference.sort_by(rank_cmp);
            reference.truncate(k);
            let got = top_k(scored.clone(), k);
            assert_eq!(got.len(), reference.len(), "k={k}");
            for (g, r) in got.iter().zip(&reference) {
                assert_eq!(g.item, r.item, "k={k}");
                assert!(
                    g.score.to_bits() == r.score.to_bits() || (g.score.is_nan() && r.score.is_nan()),
                    "k={k}: {} vs {}",
                    g.score,
                    r.score
                );
            }
        }
    }
}
