//! High-level Top-K recommendation facade.
//!
//! The scorers in [`crate::model`] rank *given* candidate lists (the
//! evaluation protocol's shape); downstream users mostly want "give me
//! the Top-K items for this group, excluding what it already did" —
//! this module provides that.

use crate::context::DataContext;
use crate::fast::ScoreAggregation;
use crate::model::GroupSa;
use groupsa_json::impl_json_struct;

/// One recommendation: an item and its ranking score.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Recommendation {
    /// Recommended item id.
    pub item: usize,
    /// Raw ranking score (higher = better; comparable within one list).
    pub score: f32,
}

impl_json_struct!(Recommendation { item, score });

/// Which inference path produces group recommendations.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum GroupMode {
    /// The full voting-scheme path (Eq. 1–10, 20).
    Voting,
    /// The fast §II-F path with the given member-score aggregation.
    Fast(ScoreAggregation),
}

fn top_k(mut scored: Vec<Recommendation>, k: usize) -> Vec<Recommendation> {
    scored.sort_by(|a, b| {
        b.score
            .partial_cmp(&a.score)
            .expect("scores are finite")
            .then(a.item.cmp(&b.item))
    });
    scored.truncate(k);
    scored
}

impl GroupSa {
    /// Top-K items for a user, excluding their training interactions.
    ///
    /// # Panics
    /// If `user` is out of range.
    pub fn recommend_for_user(&self, ctx: &DataContext, user: usize, k: usize) -> Vec<Recommendation> {
        let candidates: Vec<usize> = (0..ctx.num_items)
            .filter(|&i| !ctx.user_item_graph.has_interaction(user, i))
            .collect();
        if candidates.is_empty() {
            return Vec::new();
        }
        let scores = self.score_user_items(ctx, user, &candidates);
        top_k(
            candidates
                .into_iter()
                .zip(scores)
                .map(|(item, score)| Recommendation { item, score })
                .collect(),
            k,
        )
    }

    /// Top-K items for a group, excluding its training interactions.
    ///
    /// # Panics
    /// If `group` is out of range.
    pub fn recommend_for_group(&self, ctx: &DataContext, group: usize, k: usize, mode: GroupMode) -> Vec<Recommendation> {
        let candidates: Vec<usize> = (0..ctx.num_items)
            .filter(|&i| !ctx.group_item_graph.has_interaction(group, i))
            .collect();
        if candidates.is_empty() {
            return Vec::new();
        }
        let scores = match mode {
            GroupMode::Voting => self.score_group_items(ctx, group, &candidates),
            GroupMode::Fast(agg) => self.fast_group_scores(ctx, group, &candidates, agg),
        };
        top_k(
            candidates
                .into_iter()
                .zip(scores)
                .map(|(item, score)| Recommendation { item, score })
                .collect(),
            k,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::GroupSaConfig;
    use crate::test_fixtures::tiny_world;

    #[test]
    fn user_recommendations_exclude_history_and_are_sorted() {
        let (d, ctx) = tiny_world(51);
        let model = GroupSa::new(GroupSaConfig::tiny(), d.num_users, d.num_items);
        let recs = model.recommend_for_user(&ctx, 0, 5);
        assert_eq!(recs.len(), 5);
        for r in &recs {
            assert!(!ctx.user_item_graph.has_interaction(0, r.item), "history must be excluded");
        }
        for w in recs.windows(2) {
            assert!(w[0].score >= w[1].score, "descending scores");
        }
    }

    #[test]
    fn group_recommendations_work_in_both_modes() {
        let (d, ctx) = tiny_world(52);
        let model = GroupSa::new(GroupSaConfig::tiny(), d.num_users, d.num_items);
        let voting = model.recommend_for_group(&ctx, 0, 3, GroupMode::Voting);
        let fast = model.recommend_for_group(&ctx, 0, 3, GroupMode::Fast(ScoreAggregation::Average));
        assert_eq!(voting.len(), 3);
        assert_eq!(fast.len(), 3);
        for r in voting.iter().chain(&fast) {
            assert!(!ctx.group_item_graph.has_interaction(0, r.item));
            assert!(r.score.is_finite());
        }
    }

    #[test]
    fn k_larger_than_candidates_returns_all() {
        let (d, ctx) = tiny_world(53);
        let model = GroupSa::new(GroupSaConfig::tiny(), d.num_users, d.num_items);
        let known = ctx.user_item_graph.user_activity(0);
        let recs = model.recommend_for_user(&ctx, 0, 10_000);
        assert_eq!(recs.len(), d.num_items - known);
    }

    #[test]
    fn ties_break_by_item_id_for_determinism() {
        let recs = top_k(
            vec![
                Recommendation { item: 9, score: 1.0 },
                Recommendation { item: 2, score: 1.0 },
                Recommendation { item: 5, score: 2.0 },
            ],
            3,
        );
        assert_eq!(recs[0].item, 5);
        assert_eq!(recs[1].item, 2, "tied scores order by ascending item id");
        assert_eq!(recs[2].item, 9);
    }
}
