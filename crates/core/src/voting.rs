//! The voting scheme (paper §II-C): stacked social self-attention over
//! a group's members, then item-conditioned aggregation into the group
//! representation and the group-task score (Eq. 1–10, 20).

use crate::context::DataContext;
use crate::model::GroupSa;
use groupsa_tensor::{Graph, NodeId};
use rand::Rng;

impl GroupSa {
    /// Records the member representations before and after the voting
    /// network: the member inputs (enhanced latents or embeddings) run
    /// through `N_X` social self-attention rounds (Eq. 1–6). With
    /// voting ablated (Group-A / Group-S) the post-voting output equals
    /// the input.
    ///
    /// Returns `(pre, post)` — both `l×d`. §I's narrative assigns the
    /// two distinct roles: the voting outputs decide *who is heard*
    /// (they condition the γ weights), while each member's own
    /// representation carries *what they want* (the aggregation
    /// values).
    pub(crate) fn member_reps_graph(
        &self,
        g: &mut Graph,
        rng: &mut impl Rng,
        ctx: &DataContext,
        group: usize,
        training: bool,
    ) -> (NodeId, NodeId) {
        let members = &ctx.members[group];
        assert!(!members.is_empty(), "group {group} has no members");
        let mut x = match self.cfg.voting_input {
            crate::config::VotingInput::Embedding => self.emb_user.lookup(g, &self.store, members),
            crate::config::VotingInput::Enhanced => {
                // Stack each member's enhanced latent factor h_j
                // (Eq. 19), falling back to emb_j^U for cold users.
                let mut rows: Option<groupsa_tensor::NodeId> = None;
                for &u in members {
                    let rep = match self.user_latent_graph(g, ctx, u) {
                        Some(h) => h,
                        None => self.emb_user.lookup(g, &self.store, &[u]),
                    };
                    rows = Some(match rows {
                        None => rep,
                        Some(acc) => g.concat_rows(acc, rep),
                    });
                }
                rows.expect("non-empty group")
            }
        }; // l×d
        let pre = x;
        if self.cfg.ablation.voting {
            let mask = ctx.group_masks[group].as_ref();
            for layer in &self.voting {
                x = layer.forward(g, &self.store, rng, x, mask, training);
            }
        }
        (pre, x)
    }

    /// Records the group representation for one candidate item
    /// (Eq. 7–10): the vanilla attention scores each member against the
    /// item embedding (`γ_{t,i}` from `[embⱽ_h ⊕ x_{t,i}]`), the
    /// weighted sum is pushed through `σ(W·agg + b)`.
    ///
    /// `member_reps` is the `l×d` output of
    /// [`GroupSa::member_reps_graph`]; `item_emb` is a `1×d` node.
    fn group_rep_graph(&self, g: &mut Graph, pre_reps: NodeId, post_reps: NodeId, item_emb: NodeId) -> NodeId {
        let l = g.value(post_reps).rows();
        let ev_rep = g.repeat_rows(item_emb, l); // l×d
        let rows = g.concat_cols(ev_rep, post_reps);
        let prod = g.mul_elem(ev_rep, post_reps);
        let rows = g.concat_cols(rows, prod); // l×3d — [embⱽ_h ⊕ x_{t,i} ⊕ ⊙]
        // γ from the voting outputs, aggregating the voting outputs
        // (Eq. 8); `pre_reps` is kept for the Group-A degenerate path
        // where voting is ablated and pre == post.
        let _ = pre_reps;
        let w = self.group_att.weights(g, &self.store, rows); // 1×l
        let agg = g.matmul(w, post_reps); // 1×d
        if self.cfg.lean_group_head {
            // Lean head: the γ-weighted member aggregate *is* the group
            // representation, staying in the space the shared tower
            // already understands.
            agg
        } else {
            // Paper-literal Eq. (7): x_G = σ(W·agg + b).
            let lin = self.group_out.forward(g, &self.store, agg);
            g.relu(lin)
        }
    }

    /// Records the group-task scores of `items` for `group`
    /// (Eq. 20): each candidate gets its own item-conditioned group
    /// representation, concatenated with the item embedding and scored
    /// by the group prediction tower.
    ///
    /// Returns an `items.len()×1` node.
    pub(crate) fn group_scores_graph(
        &self,
        g: &mut Graph,
        rng: &mut impl Rng,
        ctx: &DataContext,
        group: usize,
        items: &[usize],
        training: bool,
    ) -> NodeId {
        assert!(!items.is_empty(), "group_scores_graph: no items to score");
        let (pre_reps, post_reps) = self.member_reps_graph(g, rng, ctx, group, training);
        let ev_all = self.emb_item.lookup(g, &self.store, items); // n×d
        let mut scores: Option<NodeId> = None;
        for idx in 0..items.len() {
            let ev = g.slice_rows(ev_all, idx, 1); // 1×d
            let xg = self.group_rep_graph(g, pre_reps, post_reps, ev); // 1×d
            let cat = g.concat_cols(xg, ev);
            let prod = g.mul_elem(xg, ev);
            let cat = g.concat_cols(cat, prod); // 1×3d
            let tower = if self.cfg.lean_group_head { &self.pred_user } else { &self.pred_group };
            let s = tower.forward(g, &self.store, cat); // 1×1
            scores = Some(match scores {
                None => s,
                Some(acc) => g.concat_rows(acc, s),
            });
        }
        scores.expect("items is non-empty")
    }

    /// Gradient-free member attention weights `γ_{t,i}` (Eq. 10) for a
    /// given candidate item — the per-member influence the Table IV
    /// case study reports.
    pub fn member_weights(&self, ctx: &DataContext, group: usize, item: usize) -> Vec<f32> {
        let mut g = Graph::new();
        let mut rng = groupsa_tensor::rng::seeded(0);
        let (_, post_reps) = self.member_reps_graph(&mut g, &mut rng, ctx, group, false);
        let ev = self.emb_item.lookup(&mut g, &self.store, &[item]); // 1×d
        let l = g.value(post_reps).rows();
        let ev_rep = g.repeat_rows(ev, l);
        let rows = g.concat_cols(ev_rep, post_reps);
        let prod = g.mul_elem(ev_rep, post_reps);
        let rows = g.concat_cols(rows, prod);
        let w = self.group_att.weights(&mut g, &self.store, rows); // 1×l
        g.value(w).as_slice().to_vec()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{Ablation, GroupSaConfig};
    use crate::test_fixtures::tiny_world;
    use groupsa_tensor::rng::seeded;

    #[test]
    fn member_reps_shape_matches_group_size() {
        let (d, ctx) = tiny_world(11);
        let model = GroupSa::new(GroupSaConfig::tiny(), d.num_users, d.num_items);
        for t in 0..3 {
            let mut g = Graph::new();
            let mut rng = seeded(0);
            let (pre, post) = model.member_reps_graph(&mut g, &mut rng, &ctx, t, false);
            assert_eq!(g.value(pre).shape(), (ctx.members[t].len(), 8));
            assert_eq!(g.value(post).shape(), (ctx.members[t].len(), 8));
            assert!(g.value(post).is_finite());
        }
    }

    #[test]
    fn voting_ablation_passes_raw_embeddings() {
        // With voting ablated AND the literal-embedding input, member
        // representations are exactly the raw embeddings.
        let (d, _) = tiny_world(11);
        let mut cfg = GroupSaConfig::tiny().with_ablation(Ablation::group_s());
        cfg.voting_input = crate::config::VotingInput::Embedding;
        let ctx = DataContext::from_train_view(&d, &cfg);
        let model = GroupSa::new(cfg, d.num_users, d.num_items);
        let mut g = Graph::new();
        let mut rng = seeded(0);
        let (pre, post) = model.member_reps_graph(&mut g, &mut rng, &ctx, 0, false);
        let raw = model.emb_user.lookup_inference(model.store(), &ctx.members[0]);
        assert!(g.value(pre).approx_eq(&raw, 1e-6), "embedding input must be raw");
        assert!(g.value(post).approx_eq(&raw, 1e-6), "ablated voting must be identity");
    }

    #[test]
    fn enhanced_voting_input_differs_from_raw_embeddings() {
        let (d, _) = tiny_world(11);
        let mut cfg = GroupSaConfig::tiny().with_ablation(Ablation::group_s());
        cfg.voting_input = crate::config::VotingInput::Enhanced;
        let ctx = DataContext::from_train_view(&d, &cfg);
        let model = GroupSa::new(cfg, d.num_users, d.num_items);
        let mut g = Graph::new();
        let mut rng = seeded(0);
        let (pre, _) = model.member_reps_graph(&mut g, &mut rng, &ctx, 0, false);
        let raw = model.emb_user.lookup_inference(model.store(), &ctx.members[0]);
        assert!(!g.value(pre).approx_eq(&raw, 1e-3), "enhanced input must use user modeling");
    }

    #[test]
    fn full_model_transforms_embeddings() {
        let (d, ctx) = tiny_world(11);
        let model = GroupSa::new(GroupSaConfig::tiny(), d.num_users, d.num_items);
        let mut g = Graph::new();
        let mut rng = seeded(0);
        let (pre, post) = model.member_reps_graph(&mut g, &mut rng, &ctx, 0, false);
        assert!(!g.value(post).approx_eq(g.value(pre), 1e-3), "voting layers must transform the input");
    }

    #[test]
    fn member_weights_form_distribution_and_depend_on_item() {
        let (d, ctx) = tiny_world(11);
        let model = GroupSa::new(GroupSaConfig::tiny(), d.num_users, d.num_items);
        // Find a group with at least 2 members.
        let t = (0..ctx.num_groups()).find(|&t| ctx.members[t].len() >= 2).expect("fixture has multi-member groups");
        let w0 = model.member_weights(&ctx, t, 0);
        let w1 = model.member_weights(&ctx, t, 1);
        assert_eq!(w0.len(), ctx.members[t].len());
        assert!((w0.iter().sum::<f32>() - 1.0).abs() < 1e-5);
        assert!((w1.iter().sum::<f32>() - 1.0).abs() < 1e-5);
        // Expertise is item-conditioned: weights differ across items.
        assert_ne!(w0, w1, "member weights must be item-conditioned");
    }

    #[test]
    fn group_scores_match_candidate_count_and_vary() {
        let (d, ctx) = tiny_world(11);
        let model = GroupSa::new(GroupSaConfig::tiny(), d.num_users, d.num_items);
        let items: Vec<usize> = (0..6).collect();
        let s = model.score_group_items(&ctx, 0, &items);
        assert_eq!(s.len(), 6);
        let distinct: std::collections::HashSet<_> = s.iter().map(|x| x.to_bits()).collect();
        assert!(distinct.len() > 1, "scores must differ across items");
    }

    #[test]
    fn dropout_makes_training_forward_stochastic_but_inference_stable() {
        let (d, _) = tiny_world(11);
        let mut cfg = GroupSaConfig::tiny();
        cfg.dropout = 0.4;
        let ctx = DataContext::from_train_view(&d, &cfg);
        let model = GroupSa::new(cfg, d.num_users, d.num_items);
        let items = [0usize, 1];
        let mut rng = seeded(1);
        let mut g1 = Graph::new();
        let a = model.group_scores_graph(&mut g1, &mut rng, &ctx, 0, &items, true);
        let mut g2 = Graph::new();
        let b = model.group_scores_graph(&mut g2, &mut rng, &ctx, 0, &items, true);
        assert_ne!(g1.value(a), g2.value(b), "dropout must vary training forwards");
        // Inference ignores dropout → deterministic.
        assert_eq!(model.score_group_items(&ctx, 0, &items), model.score_group_items(&ctx, 0, &items));
    }

    #[test]
    fn singleton_group_is_supported() {
        let (mut d, _) = tiny_world(11);
        d.groups.push(vec![0]);
        let cfg = GroupSaConfig::tiny();
        let ctx = DataContext::from_train_view(&d, &cfg);
        let model = GroupSa::new(cfg, d.num_users, d.num_items);
        let t = ctx.num_groups() - 1;
        let s = model.score_group_items(&ctx, t, &[0, 1, 2]);
        assert!(s.iter().all(|x| x.is_finite()));
        assert_eq!(model.member_weights(&ctx, t, 0), vec![1.0]);
    }
}
