//! # groupsa-core
//!
//! The GroupSA model of *"Group Recommendation with Latent Voting
//! Mechanism"* (ICDE 2020), built from scratch on the workspace's
//! autodiff substrate.
//!
//! GroupSA addresses **occasional group recommendation** — suggesting
//! items to ad-hoc groups with almost no group-item history — with three
//! components (paper §II):
//!
//! 1. **Voting scheme** ([`voting`]): the group decision process is
//!    simulated as stacked rounds of *social self-attention* — scaled
//!    dot-product attention among the group's members, masked so that
//!    only socially connected members exchange opinions (Eq. 1–6) —
//!    followed by an item-conditioned vanilla attention that weights
//!    each member's voice per candidate item (Eq. 7–10).
//! 2. **User modeling** ([`user_model`]): each user's representation is
//!    enriched by attention-aggregating their Top-H TF-IDF interacted
//!    items (Eq. 11–14) and Top-H friends (Eq. 15–18), fused by an MLP
//!    (Eq. 19).
//! 3. **Joint optimization** ([`train`]): the user-item and group-item
//!    BPR ranking tasks share user/item embeddings and are trained in
//!    two stages (user-item first, then group fine-tuning, §II-E),
//!    letting the plentiful user-item data compensate for the sparse
//!    group-item data.
//!
//! The ablation variants of paper §V (Group-A/S/I/F/G) are plain
//! configuration ([`config::Ablation`]), and the fast inference mode of
//! §II-F (score members individually, aggregate statically) lives in
//! [`fast`].
//!
//! ## Quickstart
//!
//! ```no_run
//! use groupsa_core::{GroupSa, GroupSaConfig, train::Trainer, context::DataContext};
//! use groupsa_data::{synthetic, split_dataset};
//! use groupsa_eval::{evaluate, EvalTask};
//!
//! let dataset = synthetic::generate(&synthetic::yelp_sim());
//! let split = split_dataset(&dataset, 0.2, 0.1, 42);
//! let ctx = DataContext::build(&dataset, &split, &GroupSaConfig::paper());
//!
//! let mut model = GroupSa::new(GroupSaConfig::paper(), dataset.num_users, dataset.num_items);
//! Trainer::new(GroupSaConfig::paper()).fit(&mut model, &ctx);
//!
//! let full = dataset.group_item_graph();
//! let task = EvalTask::paper(&split.test_group_item, &full, 7);
//! let result = evaluate(&model.group_scorer(&ctx), &task);
//! println!("group HR@5 = {:.4}", result.hr(5));
//! ```

#![warn(missing_docs)]

pub mod config;
pub mod context;
#[cfg(test)]
pub(crate) mod test_fixtures;
#[cfg(test)]
mod gradcheck;
pub mod explain;
pub mod fast;
pub mod freeze;
pub mod model;
pub mod persist;
pub mod recommend;
pub mod train;
pub mod user_model;
pub mod voting;

pub use config::{Ablation, GroupSaConfig, VotingInput};
pub use context::DataContext;
pub use fast::ScoreAggregation;
pub use model::GroupSa;
pub use recommend::{top_k, GroupMode, Recommendation, TopK};
pub use train::{TrainReport, Trainer};
