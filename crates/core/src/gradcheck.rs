//! End-to-end finite-difference gradient checks through the full
//! GroupSA training graph: embedding lookup → preference aggregation →
//! voting transformer → group attention → prediction tower → BPR loss.
//!
//! The per-layer backward passes are already checked in `groupsa-nn`
//! and `groupsa-tensor`; these tests guard the *composition* — the
//! exact graph the trainer differentiates — against wiring bugs
//! (wrong binding, dropped path, stale slot) that per-layer checks
//! cannot see. Dropout is disabled (`GroupSaConfig::tiny` sets 0.0),
//! so the loss is a deterministic function of the parameters.

use crate::config::GroupSaConfig;
use crate::context::DataContext;
use crate::model::GroupSa;
use crate::test_fixtures::tiny_world;
use groupsa_nn::loss::bpr_one_vs_rest;
use groupsa_tensor::check::assert_grad_matches;
use groupsa_tensor::rng::seeded;
use groupsa_tensor::Graph;

fn slot_named(model: &GroupSa, name: &str) -> usize {
    (0..model.store().len())
        .find(|&s| model.store().get(s).name() == name)
        .unwrap_or_else(|| panic!("no parameter named {name:?}"))
}

/// One BPR step of the group task: items[0] is the positive, the rest
/// negatives. Returns `(loss, dL/d store[slot])` with gradients pulled
/// through `ParamStore::accumulate`, exactly as the trainer does.
fn group_bpr_pass(
    model: &mut GroupSa,
    ctx: &DataContext,
    group: usize,
    items: &[usize],
    slot: usize,
) -> (f32, groupsa_tensor::Matrix) {
    model.store.zero_grads();
    let mut g = Graph::new();
    let mut rng = seeded(0);
    let scores = model.group_scores_graph(&mut g, &mut rng, ctx, group, items, true);
    let loss = bpr_one_vs_rest(&mut g, scores);
    let grads = g.backward(loss);
    model.store.accumulate(&g, &grads);
    (g.value(loss).scalar(), model.store.get(slot).grad.clone())
}

/// Same for the user task (no dropout, no voting layers on this path).
fn user_bpr_pass(
    model: &mut GroupSa,
    ctx: &DataContext,
    user: usize,
    items: &[usize],
    slot: usize,
) -> (f32, groupsa_tensor::Matrix) {
    model.store.zero_grads();
    let mut g = Graph::new();
    let scores = model.user_scores_graph(&mut g, ctx, user, items);
    let loss = bpr_one_vs_rest(&mut g, scores);
    let grads = g.backward(loss);
    model.store.accumulate(&g, &grads);
    (g.value(loss).scalar(), model.store.get(slot).grad.clone())
}

fn check_group_slot(name: &str) {
    check_group_slot_items(name, &[1usize, 5, 9, 13]);
}

fn check_group_slot_items(name: &str, items: &[usize]) {
    let (d, ctx) = tiny_world(17);
    let mut model = GroupSa::new(GroupSaConfig::tiny(), d.num_users, d.num_items);
    let slot = slot_named(&model, name);
    let group = 0usize;
    let x0 = model.store.get(slot).value.clone();
    assert_grad_matches(&x0, 1e-2, 5e-2, |m| {
        model.store.get_mut(slot).value = m.clone();
        group_bpr_pass(&mut model, &ctx, group, items, slot)
    });
}

// The pipeline, slot by slot: a wiring bug anywhere between the
// checked parameter and the loss makes the corresponding test fail.

#[test]
fn e2e_grad_user_embedding_table() {
    // Entry of the pipeline: member embeddings feed aggregation,
    // fusion, voting, and group attention.
    check_group_slot("emb_user.table");
}

#[test]
fn e2e_grad_item_embedding_table() {
    // Candidate item embeddings: used for the item-conditioned group
    // representation AND concatenated into the prediction input, so
    // the gradient flows through two paths that must sum correctly.
    check_group_slot("emb_item.table");
}

#[test]
fn e2e_grad_latent_item_aggregation() {
    // The item-space preference aggregation (consumed-item latents
    // attended per member).
    check_group_slot("lat_item.table");
}

#[test]
fn e2e_grad_voting_layer() {
    // Self-attention inside the latent-voting transformer.
    check_group_slot("vote0.attn.wq");
}

#[test]
fn e2e_grad_group_attention() {
    // The per-candidate member-influence attention (Eq. 10).
    check_group_slot("group_att.att1.w");
}

#[test]
fn e2e_grad_prediction_tower() {
    // First layer of the (lean) group prediction tower.
    check_group_slot("pred_user.0.w");
}

#[test]
fn e2e_grad_voting_attention_key_and_value() {
    // The K and V projections route through the register-blocked
    // `matmul` / `matmul_transpose_b` kernels in both the forward and
    // backward directions (dWᵏ = Xᵀ·dK uses the transposed variant);
    // check them independently of the Q slot above so a kernel bug
    // confined to one operand's tiling shows up.
    check_group_slot("vote0.attn.wk");
    check_group_slot("vote0.attn.wv");
}

#[test]
fn e2e_grad_prime_candidate_count_stresses_remainder_lanes() {
    // 7 candidates (1 positive, 6 negatives — odd negative count) make
    // every matrix on the BPR path have a prime row count, so the
    // blocked kernels' remainder lanes (rows % 4, cols % 8 tails)
    // carry real gradient signal instead of hiding behind full tiles.
    check_group_slot_items("emb_item.table", &[1usize, 2, 3, 5, 7, 9, 11]);
    check_group_slot_items("pred_user.0.w", &[1usize, 2, 3, 5, 7, 9, 11]);
}

#[test]
fn e2e_grad_softmax_attention_path_with_three_candidates() {
    // A 3-candidate list (smaller than any vector block) pushes the
    // softmax rows of the voting attention entirely into scalar
    // remainder code; the group-attention slot sits directly behind
    // that softmax in the chain.
    check_group_slot_items("group_att.att2.w", &[4usize, 8, 12]);
}

#[test]
fn e2e_grad_user_task_path() {
    // The user-task graph reuses the aggregation front-end but skips
    // voting; check its fusion entry point end-to-end too.
    let (d, ctx) = tiny_world(23);
    let mut model = GroupSa::new(GroupSaConfig::tiny(), d.num_users, d.num_items);
    let slot = slot_named(&model, "fusion.0.w");
    let (user, items) = (3usize, [2usize, 7, 11]);
    let x0 = model.store.get(slot).value.clone();
    assert_grad_matches(&x0, 1e-2, 5e-2, |m| {
        model.store.get_mut(slot).value = m.clone();
        user_bpr_pass(&mut model, &ctx, user, &items, slot)
    });
}
