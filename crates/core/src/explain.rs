//! Case-study explanations (paper Table IV): per-member attention
//! weights and bounded prediction scores for a (group, item) pair.

use crate::context::DataContext;
use crate::model::GroupSa;
use groupsa_tensor::ops::sigmoid;
use groupsa_json::impl_json_struct;

/// Explanation of one group-item prediction: which members the model
/// listened to, and how strongly it predicts the interaction.
#[derive(Clone, Debug, PartialEq)]
pub struct GroupExplanation {
    /// The explained group.
    pub group: usize,
    /// The candidate item.
    pub item: usize,
    /// The group's members, parallel to `member_weights`.
    pub members: Vec<usize>,
    /// Item-conditioned member attention weights `γ_{t,i}` (Eq. 10).
    pub member_weights: Vec<f32>,
    /// Raw ranking score `r̂ᴳ` (Eq. 20).
    pub raw_score: f32,
    /// `σ(r̂ᴳ)` — the `[0, 1]` prediction probability reported in the
    /// paper's Table IV.
    pub probability: f32,
}

impl_json_struct!(GroupExplanation { group, item, members, member_weights, raw_score, probability });

impl GroupExplanation {
    /// The member the model weighted most heavily.
    pub fn dominant_member(&self) -> usize {
        let idx = self
            .member_weights
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).expect("weights are finite"))
            .expect("groups are non-empty")
            .0;
        self.members[idx]
    }
}

impl GroupSa {
    /// Explains the prediction for `(group, item)`: member weights plus
    /// the (sigmoid-bounded) score, as in the Table IV case study.
    pub fn explain_group_prediction(&self, ctx: &DataContext, group: usize, item: usize) -> GroupExplanation {
        let member_weights = self.member_weights(ctx, group, item);
        let raw_score = self.score_group_items(ctx, group, &[item])[0];
        GroupExplanation {
            group,
            item,
            members: ctx.members[group].clone(),
            member_weights,
            raw_score,
            probability: sigmoid(raw_score),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::GroupSaConfig;
    use crate::test_fixtures::tiny_world;

    #[test]
    fn explanation_is_internally_consistent() {
        let (d, ctx) = tiny_world(31);
        let model = GroupSa::new(GroupSaConfig::tiny(), d.num_users, d.num_items);
        let e = model.explain_group_prediction(&ctx, 0, 3);
        assert_eq!(e.group, 0);
        assert_eq!(e.item, 3);
        assert_eq!(e.members, ctx.members[0]);
        assert_eq!(e.member_weights.len(), e.members.len());
        assert!((e.member_weights.iter().sum::<f32>() - 1.0).abs() < 1e-5);
        assert!((0.0..=1.0).contains(&e.probability));
        assert!((e.probability - sigmoid(e.raw_score)).abs() < 1e-6);
    }

    #[test]
    fn dominant_member_is_argmax() {
        let e = GroupExplanation {
            group: 0,
            item: 0,
            members: vec![101, 102, 103],
            member_weights: vec![0.2, 0.5, 0.3],
            raw_score: 0.0,
            probability: 0.5,
        };
        assert_eq!(e.dominant_member(), 102);
    }

    #[test]
    fn explanation_matches_direct_apis() {
        let (d, ctx) = tiny_world(31);
        let model = GroupSa::new(GroupSaConfig::tiny(), d.num_users, d.num_items);
        let e = model.explain_group_prediction(&ctx, 1, 0);
        assert_eq!(e.member_weights, model.member_weights(&ctx, 1, 0));
        assert_eq!(e.raw_score, model.score_group_items(&ctx, 1, &[0])[0]);
    }
}
