//! Tape-free frozen scoring: eval-path twins of the graph builders.
//!
//! The training code scores through [`groupsa_tensor::Graph`], which
//! allocates a node per op so gradients can flow. A serving process
//! never needs gradients, so this module re-expresses the exact same
//! op sequence (the compositions of [`crate::user_model`] and
//! [`crate::voting`]) through the gradient-free `forward_inference`
//! building blocks of `groupsa-nn`.
//!
//! **Equivalence contract**: every graph op computes its forward value
//! eagerly by delegating to the same `Matrix`/`ops` routines these
//! twins call, in the same order, so frozen scores are bit-identical
//! to [`GroupSa::score_user_items`] / [`GroupSa::score_group_items`]
//! (up to IEEE sign-of-zero, which `f32 ==` treats as equal). The
//! golden tests below and in `groupsa-serve` pin this down.
//!
//! The split into *latent* / *member-reps* producers and score
//! consumers is what makes serving cheap: a `FrozenModel` (in
//! `groupsa-serve`) computes each user's latent factor and each
//! group's post-voting member representations **once** at load, and
//! per-request work reduces to embedding lookups plus the prediction
//! tower — the paper's §II-F observation that voting-network inference
//! is the latency bottleneck, applied to the full path.

use crate::context::DataContext;
use crate::model::GroupSa;
use groupsa_tensor::{ops, Matrix};

impl GroupSa {
    /// Number of users the embedding tables were built for.
    pub fn num_users(&self) -> usize {
        self.emb_user.count()
    }

    /// Number of items the embedding tables were built for.
    pub fn num_items(&self) -> usize {
        self.emb_item.count()
    }

    /// The shared user embedding table `embᵁ` (`num_users×d`).
    pub fn user_embedding_table(&self) -> &Matrix {
        self.store.value(self.emb_user.slot())
    }

    /// The shared item embedding table `embⱽ` (`num_items×d`).
    pub fn item_embedding_table(&self) -> &Matrix {
        self.store.value(self.emb_item.slot())
    }

    /// Tape-free twin of the item-aggregation branch `hⱽ_j`
    /// (Eq. 11–14), driven by an explicit Top-H item list.
    fn item_aggregation_frozen(&self, items: &[usize], emb_u: &Matrix) -> Option<Matrix> {
        if !self.cfg.ablation.item_aggregation {
            return None;
        }
        if items.is_empty() {
            return None;
        }
        let xs = self.lat_item.lookup_inference(&self.store, items); // H×d
        let eu_rep = emb_u.repeat_rows(items.len());
        let rows = eu_rep.concat_cols(&xs); // H×2d
        let agg = self.item_att.aggregate_inference(&self.store, &rows, &xs); // 1×d
        let mut lin = self.item_agg_out.forward_inference(&self.store, &agg);
        lin.map_inplace(ops::relu);
        Some(lin)
    }

    /// Tape-free twin of the social-aggregation branch `hˢ_j`
    /// (Eq. 15–18), driven by an explicit Top-H friend list.
    fn social_aggregation_frozen(&self, friends: &[usize], emb_u: &Matrix) -> Option<Matrix> {
        if !self.cfg.ablation.social_aggregation {
            return None;
        }
        if friends.is_empty() {
            return None;
        }
        let xs = self.lat_social.lookup_inference(&self.store, friends); // H×d
        let eu_rep = emb_u.repeat_rows(friends.len());
        let rows = eu_rep.concat_cols(&xs); // H×2d
        let agg = self.social_att.aggregate_inference(&self.store, &rows, &xs); // 1×d
        let mut lin = self.social_agg_out.forward_inference(&self.store, &agg);
        lin.map_inplace(ops::relu);
        Some(lin)
    }

    /// Tape-free twin of [`GroupSa::user_latent_graph`] (Eq. 19): the
    /// enhanced user latent factor `h_j`, or `None` when user modeling
    /// is ablated or the user has neither history nor friends.
    ///
    /// This is the expensive, *precomputable* half of user scoring —
    /// it depends only on the trained parameters and the context, so a
    /// serving layer caches one `1×d` row per user.
    pub fn user_latent_frozen(&self, ctx: &DataContext, user: usize) -> Option<Matrix> {
        self.user_latent_from_lists(user, &ctx.top_items[user], &ctx.top_friends[user])
    }

    /// [`GroupSa::user_latent_frozen`] with the Top-H lists supplied
    /// explicitly instead of read from a [`DataContext`]. This is the
    /// producer the snapshot builder streams through: a chunked
    /// generator can hand over each user's lists without ever
    /// materializing a full context, and the result is bit-identical
    /// to the context-driven call (same ops, same order).
    pub fn user_latent_from_lists(
        &self,
        user: usize,
        top_items: &[usize],
        top_friends: &[usize],
    ) -> Option<Matrix> {
        if !self.cfg.ablation.user_modeling() {
            return None;
        }
        let emb_u = self.emb_user.lookup_inference(&self.store, &[user]); // 1×d
        let hv = self.item_aggregation_frozen(top_items, &emb_u);
        let hs = self.social_aggregation_frozen(top_friends, &emb_u);
        match (hv, hs) {
            (Some(hv), Some(hs)) => {
                let cat = hv.concat_cols(&hs); // 1×2d
                Some(self.fusion.forward_inference(&self.store, &cat))
            }
            (Some(hv), None) => Some(hv),
            (None, Some(hs)) => Some(hs),
            (None, None) => None,
        }
    }

    /// Tape-free twin of the user-task scores (Eq. 22–23), taking the
    /// user's latent factor as an input instead of recomputing it —
    /// pass the cached result of [`GroupSa::user_latent_frozen`]
    /// (`None` reproduces the `r₁`-only fallback).
    ///
    /// # Panics
    /// If `items` is empty or any id is out of range.
    pub fn score_user_items_frozen(&self, user: usize, items: &[usize], latent: Option<&Matrix>) -> Vec<f32> {
        assert!(!items.is_empty(), "score_user_items_frozen: no items to score");
        let n = items.len();
        let emb_u = self.emb_user.lookup_inference(&self.store, &[user]); // 1×d
        let eu_rep = emb_u.repeat_rows(n);
        let ev = self.emb_item.lookup_inference(&self.store, items); // n×d
        let cat1 = eu_rep.concat_cols(&ev).concat_cols(&eu_rep.mul_elem(&ev)); // n×3d
        let r1 = self.pred_user.forward_inference(&self.store, &cat1); // n×1

        let w = self.cfg.w_u;
        let scores = match latent {
            // Exact-zero gate on a config weight, not an arithmetic
            // result: w_u = 0.0 means "tower disabled", set literally.
            Some(h) if w != 0.0 => { // lint: allow(float-eq)
                let h_rep = h.repeat_rows(n);
                let xv = self.lat_item.lookup_inference(&self.store, items); // n×d
                let cat2 = h_rep.concat_cols(&xv).concat_cols(&h_rep.mul_elem(&xv)); // n×3d
                let r2 = self.pred_user.forward_inference(&self.store, &cat2); // n×1
                r1.scale(1.0 - w).add(&r2.scale(w))
            }
            _ => r1,
        };
        scores.as_slice().to_vec()
    }

    /// Batched twin of [`GroupSa::score_user_items_frozen`]: scores
    /// the same `items` slice for many users through **one** stacked
    /// prediction-tower pass instead of one pass per user.
    ///
    /// `latents[j]` is user `users[j]`'s cached latent factor (as
    /// produced by [`GroupSa::user_latent_frozen`]); the slices must
    /// be equal length. The shared item embeddings are gathered once,
    /// and the `r₂` tower runs once over the latent-bearing subset.
    ///
    /// Every tower op is row-independent (matmul rows accumulate from
    /// their own input row only; bias add, ReLU and the `w_u` blend
    /// are element-wise), so row `j·n + i` of the stacked pass is
    /// bit-identical to the per-user call — the freeze tests pin this.
    ///
    /// # Panics
    /// If `items` is empty, the slices differ in length, or any id is
    /// out of range.
    pub fn score_users_items_frozen(
        &self,
        users: &[usize],
        latents: &[Option<&Matrix>],
        items: &[usize],
    ) -> Vec<Vec<f32>> {
        assert!(!items.is_empty(), "score_users_items_frozen: no items to score");
        assert_eq!(users.len(), latents.len(), "score_users_items_frozen: users/latents length mismatch");
        if users.is_empty() {
            return Vec::new();
        }
        let n = items.len();
        // Shared gathers happen once per call, regardless of how many
        // stacked sub-batches the tower pass below is split into.
        let ev = self.emb_item.lookup_inference(&self.store, items); // n×d
        let xv = if self.cfg.w_u != 0.0 && latents.iter().any(|l| l.is_some()) { // lint: allow(float-eq)
            Some(self.lat_item.lookup_inference(&self.store, items)) // n×d
        } else {
            None
        };
        // Cap each stacked tower pass at ~STACK_ROWS rows: past that
        // the 3d-wide input and intermediates fall out of cache and
        // the batching win inverts (measured crossover between 512
        // and 2048 rows at d = 32). Row independence makes the split
        // invisible in the output bits.
        const STACK_ROWS: usize = 256;
        let per = (STACK_ROWS / n).max(1);
        let mut out = Vec::with_capacity(users.len());
        for (uc, lc) in users.chunks(per).zip(latents.chunks(per)) {
            self.score_user_chunk_stacked(uc, lc, &ev, xv.as_ref(), &mut out);
        }
        out
    }

    /// One stacked tower pass over a bounded user sub-batch; shared
    /// item gathers (`ev`, and `xv` when any latent engages) are done
    /// by the caller. Appends one score row per user to `out`.
    fn score_user_chunk_stacked(
        &self,
        users: &[usize],
        latents: &[Option<&Matrix>],
        ev: &Matrix,
        xv: Option<&Matrix>,
        out: &mut Vec<Vec<f32>>,
    ) {
        let n = ev.rows();
        let d = ev.cols();

        // Stacked r₁ inputs: per user the same [eᵁ | eⱽ | eᵁ⊙eⱽ] rows
        // the per-user path concatenates. Built with row-wise slice
        // copies, not per-element pushes — the build is pure data
        // movement and must not eat the batching win.
        let width = 3 * d;
        let mut cat1 = vec![0.0f32; users.len() * n * width];
        for (j, &u) in users.iter().enumerate() {
            let eu = self.emb_user.row(&self.store, u); // &[f32] of len d
            for i in 0..n {
                let evr = ev.row(i);
                let row = &mut cat1[(j * n + i) * width..(j * n + i + 1) * width];
                row[..d].copy_from_slice(eu);
                row[d..2 * d].copy_from_slice(evr);
                for ((o, &a), &b) in row[2 * d..].iter_mut().zip(eu).zip(evr) {
                    *o = a * b;
                }
            }
        }
        let cat1 = Matrix::from_vec(users.len() * n, width, cat1);
        let r1 = self.pred_user.forward_inference(&self.store, &cat1); // (U·n)×1

        // The r₂ tower only runs for users whose latent exists and
        // whose blend weight engages it (exact-zero config gate, same
        // as the per-user path).
        let w = self.cfg.w_u;
        let with_latent: Vec<usize> = (0..users.len())
            .filter(|&j| latents[j].is_some() && w != 0.0) // lint: allow(float-eq)
            .collect();
        let r2 = if with_latent.is_empty() {
            None
        } else {
            // lint: allow(panic-reach) — xv is gathered above whenever with_latent is non-empty.
            let xv = xv.expect("caller gathers xv whenever any latent engages");
            let mut cat2 = vec![0.0f32; with_latent.len() * n * width];
            for (rank, &j) in with_latent.iter().enumerate() {
                let h = latents[j].expect("filtered to Some").row(0); // lint: allow(panic-reach)
                for i in 0..n {
                    let xvr = xv.row(i);
                    let row = &mut cat2[(rank * n + i) * width..(rank * n + i + 1) * width];
                    row[..d].copy_from_slice(h);
                    row[d..2 * d].copy_from_slice(xvr);
                    for ((o, &a), &b) in row[2 * d..].iter_mut().zip(h).zip(xvr) {
                        *o = a * b;
                    }
                }
            }
            let cat2 = Matrix::from_vec(with_latent.len() * n, width, cat2);
            Some(self.pred_user.forward_inference(&self.store, &cat2)) // (L·n)×1
        };

        let mut latent_rank = 0usize;
        for j in 0..users.len() {
            let r1_rows = &r1.as_slice()[j * n..(j + 1) * n];
            if with_latent.contains(&j) {
                // lint: allow(panic-reach) — r2 is Some exactly when with_latent is non-empty.
                let r2 = r2.as_ref().expect("r2 computed for latent-bearing users");
                let r2_rows = &r2.as_slice()[latent_rank * n..(latent_rank + 1) * n];
                latent_rank += 1;
                out.push(
                    r1_rows
                        .iter()
                        .zip(r2_rows)
                        .map(|(&a, &b)| a * (1.0 - w) + b * w)
                        .collect(),
                );
            } else {
                out.push(r1_rows.to_vec());
            }
        }
    }

    /// Tape-free twin of [`GroupSa::member_reps_graph`] (Eq. 1–6),
    /// returning the post-voting `l×d` member representations.
    ///
    /// `latents` is an optional per-user cache indexed by user id (as
    /// produced by [`GroupSa::user_latent_frozen`]); pass `&[]` to
    /// compute enhanced inputs on the fly. It is only consulted for
    /// [`crate::config::VotingInput::Enhanced`].
    ///
    /// # Panics
    /// If the group is out of range or has no members.
    pub fn member_reps_frozen(&self, ctx: &DataContext, group: usize, latents: &[Option<Matrix>]) -> Matrix {
        self.member_reps_from_parts(&ctx.members[group], ctx.group_masks[group].as_ref(), |u| {
            match latents.get(u) {
                Some(cached) => cached.clone(),
                None => self.user_latent_frozen(ctx, u),
            }
        })
    }

    /// [`GroupSa::member_reps_frozen`] with the group's parts supplied
    /// explicitly: the member list, the optional social bias mask, and
    /// a latent source (only consulted for
    /// [`crate::config::VotingInput::Enhanced`]). Lets the snapshot
    /// builder stream groups without a full [`DataContext`];
    /// bit-identical to the context-driven call.
    ///
    /// # Panics
    /// If `members` is empty.
    pub fn member_reps_from_parts(
        &self,
        members: &[usize],
        mask: Option<&Matrix>,
        mut latent_of: impl FnMut(usize) -> Option<Matrix>,
    ) -> Matrix {
        assert!(!members.is_empty(), "group has no members");
        let mut x = match self.cfg.voting_input {
            crate::config::VotingInput::Embedding => self.emb_user.lookup_inference(&self.store, members),
            crate::config::VotingInput::Enhanced => {
                let mut rows: Option<Matrix> = None;
                for &u in members {
                    let rep = match latent_of(u) {
                        Some(h) => h,
                        None => self.emb_user.lookup_inference(&self.store, &[u]),
                    };
                    rows = Some(match rows {
                        None => rep,
                        Some(acc) => acc.concat_rows(&rep),
                    });
                }
                rows.expect("non-empty group")
            }
        }; // l×d
        if self.cfg.ablation.voting {
            for layer in &self.voting {
                x = layer.forward_inference(&self.store, &x, mask);
            }
        }
        x
    }

    /// Tape-free twin of the group-task scores (Eq. 7–10, 20), taking
    /// the precomputed post-voting member representations — pass the
    /// cached result of [`GroupSa::member_reps_frozen`]. Per item this
    /// is one item-conditioned γ attention over `l` members plus one
    /// tower evaluation.
    ///
    /// # Panics
    /// If `items` is empty or any id is out of range.
    pub fn score_group_items_frozen(&self, post_reps: &Matrix, items: &[usize]) -> Vec<f32> {
        assert!(!items.is_empty(), "score_group_items_frozen: no items to score");
        let l = post_reps.rows();
        let ev_all = self.emb_item.lookup_inference(&self.store, items); // n×d
        let tower = if self.cfg.lean_group_head { &self.pred_user } else { &self.pred_group };
        (0..items.len())
            .map(|idx| {
                let ev = ev_all.slice_rows(idx, 1); // 1×d
                let ev_rep = ev.repeat_rows(l);
                let rows = ev_rep.concat_cols(post_reps).concat_cols(&ev_rep.mul_elem(post_reps)); // l×3d
                let w = self.group_att.weights_inference(&self.store, &rows); // 1×l
                let agg = w.matmul(post_reps); // 1×d
                let xg = if self.cfg.lean_group_head {
                    agg
                } else {
                    let mut lin = self.group_out.forward_inference(&self.store, &agg);
                    lin.map_inplace(ops::relu);
                    lin
                };
                let cat = xg.concat_cols(&ev).concat_cols(&xg.mul_elem(&ev)); // 1×3d
                tower.forward_inference(&self.store, &cat).scalar()
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use crate::config::{Ablation, GroupSaConfig, VotingInput};
    use crate::context::DataContext;
    use crate::model::GroupSa;
    use crate::test_fixtures::tiny_world;

    fn frozen_user_scores(model: &GroupSa, ctx: &DataContext, user: usize, items: &[usize]) -> Vec<f32> {
        let h = model.user_latent_frozen(ctx, user);
        model.score_user_items_frozen(user, items, h.as_ref())
    }

    fn frozen_group_scores(model: &GroupSa, ctx: &DataContext, group: usize, items: &[usize]) -> Vec<f32> {
        let reps = model.member_reps_frozen(ctx, group, &[]);
        model.score_group_items_frozen(&reps, items)
    }

    #[test]
    fn frozen_user_scores_match_graph_path_exactly() {
        let (d, ctx) = tiny_world(61);
        let model = GroupSa::new(GroupSaConfig::tiny(), d.num_users, d.num_items);
        let items: Vec<usize> = (0..10).collect();
        for user in [0, 1, d.num_users - 1] {
            assert_eq!(
                model.score_user_items(&ctx, user, &items),
                frozen_user_scores(&model, &ctx, user, &items),
                "user {user}"
            );
        }
    }

    #[test]
    fn frozen_group_scores_match_graph_path_exactly() {
        let (d, ctx) = tiny_world(61);
        let model = GroupSa::new(GroupSaConfig::tiny(), d.num_users, d.num_items);
        let items: Vec<usize> = (0..10).collect();
        for group in [0, 1, ctx.num_groups() - 1] {
            assert_eq!(
                model.score_group_items(&ctx, group, &items),
                frozen_group_scores(&model, &ctx, group, &items),
                "group {group}"
            );
        }
    }

    #[test]
    fn frozen_paths_match_under_every_ablation() {
        let (d, _) = tiny_world(62);
        for ab in [
            Ablation::full(),
            Ablation::group_a(),
            Ablation::group_s(),
            Ablation::group_i(),
            Ablation::group_f(),
            Ablation::group_g(),
        ] {
            let cfg = GroupSaConfig::tiny().with_ablation(ab);
            let ctx = DataContext::from_train_view(&d, &cfg);
            let model = GroupSa::new(cfg, d.num_users, d.num_items);
            let items = [0usize, 1, 2, 3];
            assert_eq!(
                model.score_user_items(&ctx, 0, &items),
                frozen_user_scores(&model, &ctx, 0, &items),
                "{ab:?}"
            );
            assert_eq!(
                model.score_group_items(&ctx, 0, &items),
                frozen_group_scores(&model, &ctx, 0, &items),
                "{ab:?}"
            );
        }
    }

    #[test]
    fn frozen_paths_match_with_enhanced_voting_input_and_paper_head() {
        let (d, _) = tiny_world(63);
        let mut cfg = GroupSaConfig::tiny();
        cfg.voting_input = VotingInput::Enhanced;
        cfg.lean_group_head = false;
        let ctx = DataContext::from_train_view(&d, &cfg);
        let model = GroupSa::new(cfg, d.num_users, d.num_items);
        let items = [0usize, 1, 2, 3, 4];
        assert_eq!(model.score_group_items(&ctx, 0, &items), frozen_group_scores(&model, &ctx, 0, &items));

        // The per-user latent cache is equivalent to on-the-fly latents.
        let latents: Vec<Option<groupsa_tensor::Matrix>> =
            (0..d.num_users).map(|u| model.user_latent_frozen(&ctx, u)).collect();
        let cached = model.member_reps_frozen(&ctx, 0, &latents);
        let fresh = model.member_reps_frozen(&ctx, 0, &[]);
        assert_eq!(cached.as_slice(), fresh.as_slice());
    }

    #[test]
    fn frozen_user_scores_match_with_w_u_zero() {
        let (d, _) = tiny_world(64);
        let mut cfg = GroupSaConfig::tiny();
        cfg.w_u = 0.0;
        let ctx = DataContext::from_train_view(&d, &cfg);
        let model = GroupSa::new(cfg, d.num_users, d.num_items);
        let items = [0usize, 1, 2];
        assert_eq!(model.score_user_items(&ctx, 0, &items), frozen_user_scores(&model, &ctx, 0, &items));
    }

    #[test]
    fn batched_user_scores_are_bit_identical_to_per_user_calls() {
        let (d, ctx) = tiny_world(66);
        let model = GroupSa::new(GroupSaConfig::tiny(), d.num_users, d.num_items);
        let items: Vec<usize> = (0..13).collect(); // odd n stresses row slicing
        let users: Vec<usize> = vec![0, 1, d.num_users - 1, 2, 0]; // duplicate on purpose
        let latents: Vec<Option<groupsa_tensor::Matrix>> =
            users.iter().map(|&u| model.user_latent_frozen(&ctx, u)).collect();
        let latent_refs: Vec<Option<&groupsa_tensor::Matrix>> = latents.iter().map(|l| l.as_ref()).collect();
        let batched = model.score_users_items_frozen(&users, &latent_refs, &items);
        assert_eq!(batched.len(), users.len());
        for (j, &u) in users.iter().enumerate() {
            let solo = model.score_user_items_frozen(u, &items, latent_refs[j]);
            let batched_bits: Vec<u32> = batched[j].iter().map(|s| s.to_bits()).collect();
            let solo_bits: Vec<u32> = solo.iter().map(|s| s.to_bits()).collect();
            assert_eq!(batched_bits, solo_bits, "user {u} (batch slot {j})");
        }
    }

    #[test]
    fn batched_user_scores_respect_the_w_u_gate() {
        let (d, _) = tiny_world(67);
        let mut cfg = GroupSaConfig::tiny();
        cfg.w_u = 0.0;
        let ctx = DataContext::from_train_view(&d, &cfg);
        let model = GroupSa::new(cfg, d.num_users, d.num_items);
        let items = [0usize, 1, 2, 3, 4];
        let latents: Vec<Option<groupsa_tensor::Matrix>> =
            (0..2).map(|u| model.user_latent_frozen(&ctx, u)).collect();
        let latent_refs: Vec<Option<&groupsa_tensor::Matrix>> = latents.iter().map(|l| l.as_ref()).collect();
        let batched = model.score_users_items_frozen(&[0, 1], &latent_refs, &items);
        for (j, u) in [0usize, 1].into_iter().enumerate() {
            let solo = model.score_user_items_frozen(u, &items, latent_refs[j]);
            assert_eq!(batched[j], solo, "user {u} with w_u = 0");
        }
    }

    #[test]
    fn embedding_extraction_exposes_tables() {
        let (d, _) = tiny_world(65);
        let model = GroupSa::new(GroupSaConfig::tiny(), d.num_users, d.num_items);
        assert_eq!(model.num_users(), d.num_users);
        assert_eq!(model.num_items(), d.num_items);
        assert_eq!(model.user_embedding_table().shape(), (d.num_users, 8));
        assert_eq!(model.item_embedding_table().shape(), (d.num_items, 8));
    }
}
