//! Property tests for the bounded-heap Top-K selection.
//!
//! [`groupsa_core::top_k`] and the streaming [`groupsa_core::TopK`]
//! accumulator replaced a full sort + truncate on the serve hot path.
//! These properties pin them to an independently restated naive
//! reference over adversarial score vectors: NaN, ±inf, signed zeros
//! and heavy duplicate ties all included — exactly the inputs a heap
//! comparator bug would mis-rank without panicking.

use groupsa_core::{top_k, Recommendation, TopK};
use proptest::collection::vec;
use proptest::prelude::*;
use std::cmp::Ordering;

/// The documented ranking contract, restated from scratch (NOT by
/// calling into the crate): descending score, NaN below every real
/// score including `-inf`, ties broken by ascending item id.
fn naive_rank(a: &Recommendation, b: &Recommendation) -> Ordering {
    let class = |s: f32| if s.is_nan() { 1u8 } else { 0u8 };
    class(a.score)
        .cmp(&class(b.score))
        .then_with(|| {
            if a.score.is_nan() || b.score.is_nan() {
                Ordering::Equal // NaN ties fall through to item id
            } else {
                b.score.partial_cmp(&a.score).expect("both real")
            }
        })
        .then(a.item.cmp(&b.item))
}

/// Naive reference: sort everything, keep the first `k`.
fn naive_top_k(mut scored: Vec<Recommendation>, k: usize) -> Vec<Recommendation> {
    scored.sort_by(naive_rank);
    scored.truncate(k);
    scored
}

/// Decodes one `(tag, lattice)` draw into a score. Tags 0–4 inject the
/// special values; the rest land on a coarse lattice so duplicate
/// scores (and therefore item-id tie-breaks) are common, not rare.
fn decode(tag: u8, lattice: i32) -> f32 {
    match tag {
        0 => f32::NAN,
        1 => f32::INFINITY,
        2 => f32::NEG_INFINITY,
        3 => 0.0,
        4 => -0.0,
        _ => lattice as f32 * 0.25,
    }
}

/// Two scores are the same selection-wise: identical bits, or both NaN
/// (the heap and the sort may surface different NaN payloads).
fn same_score(a: f32, b: f32) -> bool {
    a.to_bits() == b.to_bits() || (a.is_nan() && b.is_nan())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn bounded_heap_agrees_with_sort_and_truncate(
        raw in vec((0u8..16, -12i32..12), 0..220),
        k in 0usize..48,
    ) {
        let scored: Vec<Recommendation> = raw
            .iter()
            .enumerate()
            .map(|(item, &(tag, lattice))| Recommendation { item, score: decode(tag, lattice) })
            .collect();

        let want = naive_top_k(scored.clone(), k);
        let got = top_k(scored, k);

        prop_assert_eq!(got.len(), want.len(), "k={}", k);
        for (i, (g, w)) in got.iter().zip(&want).enumerate() {
            prop_assert_eq!(g.item, w.item, "rank {} of k={}", i, k);
            prop_assert!(
                same_score(g.score, w.score),
                "rank {} of k={}: {} vs {}", i, k, g.score, w.score
            );
        }
    }

    #[test]
    fn streaming_pushes_match_batch_top_k(
        raw in vec((0u8..16, -12i32..12), 1..160),
        k in 1usize..32,
    ) {
        // The serve scan pushes candidates chunk by chunk instead of
        // collecting a Vec; the accumulator must not care.
        let scored: Vec<Recommendation> = raw
            .iter()
            .enumerate()
            .map(|(item, &(tag, lattice))| Recommendation { item, score: decode(tag, lattice) })
            .collect();

        let mut acc = TopK::new(k);
        for rec in &scored {
            acc.push(rec.item, rec.score);
        }
        prop_assert!(acc.len() <= k);
        let streamed = acc.into_sorted();
        let batch = top_k(scored, k);

        prop_assert_eq!(streamed.len(), batch.len());
        for (s, b) in streamed.iter().zip(&batch) {
            prop_assert_eq!(s.item, b.item);
            prop_assert!(same_score(s.score, b.score));
        }
    }
}
