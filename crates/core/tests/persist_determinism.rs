//! Checkpoint artifacts must be byte-identical across process runs.
//!
//! The persistence audit (ISSUE 5, satellite b) verified that
//! `Checkpoint` serialisation never iterates a hash container:
//! parameters are stored as a `Vec` in registration order and
//! `groupsa-json` writes object keys in declaration order. This test
//! pins that property down *observably*: it re-executes the test
//! binary twice (fresh address-space layout, fresh hash seeds — the
//! exact thing that exposes accidental `HashMap` iteration) and
//! asserts both child processes produce the same checkpoint digest as
//! the parent.

use groupsa_core::{DataContext, GroupSa, GroupSaConfig};
use groupsa_core::train::Trainer;
use groupsa_data::synthetic::{generate, SyntheticConfig};
use std::process::Command;

/// Set in the re-exec'd children so `child_emits_checkpoint_digest`
/// knows to actually do work (it is a silent no-op in a normal run).
const CHILD_ENV: &str = "GROUPSA_PERSIST_DIGEST_CHILD";

/// Trains a tiny model deterministically and returns its checkpoint
/// JSON — the exact bytes `GroupSa::save` would write.
fn checkpoint_json() -> String {
    let dataset = generate(&SyntheticConfig {
        name: "persist-determinism".to_string(),
        seed: 77,
        num_users: 30,
        num_items: 20,
        num_groups: 10,
        num_topics: 3,
        latent_dim: 4,
        avg_items_per_user: 6.0,
        avg_friends_per_user: 4.0,
        avg_items_per_group: 1.5,
        mean_group_size: 3.0,
        zipf_exponent: 0.8,
        homophily: 0.8,
        social_influence: 0.3,
        expertise_sharpness: 2.0,
        taste_temperature: 0.3,
        consensus_blend: 0.5,
        connectedness_boost: 1.0,
    });
    let mut cfg = GroupSaConfig::tiny();
    cfg.user_epochs = 2;
    cfg.group_epochs = 2;
    let ctx = DataContext::from_train_view(&dataset, &cfg);
    let mut model = GroupSa::new(cfg.clone(), dataset.num_users, dataset.num_items);
    Trainer::new(cfg).fit(&mut model, &ctx);
    groupsa_json::to_string(&model.to_checkpoint(dataset.num_users, dataset.num_items))
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Child half of the re-exec trick: under [`CHILD_ENV`] it trains the
/// model and prints the checkpoint digest; in a normal test run it is
/// a no-op.
#[test]
fn child_emits_checkpoint_digest() {
    if std::env::var(CHILD_ENV).is_err() {
        return;
    }
    println!("DIGEST={:016x}", fnv1a(checkpoint_json().as_bytes()));
}

fn digest_from_child() -> u64 {
    let exe = std::env::current_exe().expect("test binary path");
    let out = Command::new(exe)
        .args(["--exact", "child_emits_checkpoint_digest", "--nocapture"])
        .env(CHILD_ENV, "1")
        .output()
        .expect("re-exec the test binary");
    assert!(out.status.success(), "child failed: {}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    // The harness may print its own "test … ." prefix on the same line
    // as the digest, so locate the marker anywhere in the output.
    let idx = stdout
        .find("DIGEST=")
        .unwrap_or_else(|| panic!("no DIGEST marker in child output:\n{stdout}"));
    let hex = &stdout[idx + "DIGEST=".len()..idx + "DIGEST=".len() + 16];
    u64::from_str_radix(hex, 16).expect("hex digest")
}

#[test]
fn checkpoint_bytes_are_identical_across_process_runs() {
    // In-process: serialising twice yields the same bytes.
    let local = checkpoint_json();
    assert_eq!(local, checkpoint_json(), "serialisation is not even stable in-process");
    let local_digest = fnv1a(local.as_bytes());
    // Cross-process: two fresh address spaces (fresh hash seeds) must
    // agree with each other and with this process.
    let first = digest_from_child();
    let second = digest_from_child();
    assert_eq!(first, second, "two process runs produced different checkpoint bytes");
    assert_eq!(first, local_digest, "child checkpoint bytes differ from the parent's");
}
