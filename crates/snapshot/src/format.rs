//! On-disk format primitives: magic numbers, little-endian codecs,
//! the FNV-1a section checksum, and the quantization row codecs.
//!
//! Layout reference lives in DESIGN.md §13; the invariants enforced
//! here:
//!
//! * every multi-byte integer is little-endian, no exceptions;
//! * every section carries an FNV-1a-64 checksum of its raw bytes;
//! * a quantized row decodes to `f32` through pure bit arithmetic —
//!   no libm, no platform-dependent rounding — so reads are
//!   deterministic across machines and across repeated calls.

use crate::error::SnapshotError;

/// First 8 bytes of a manifest file.
pub const MANIFEST_MAGIC: [u8; 8] = *b"GSNPMAN\0";
/// First 8 bytes of a shard slab file.
pub const SHARD_MAGIC: [u8; 8] = *b"GSNPSHD\0";
/// Current (and only) format version.
pub const FORMAT_VERSION: u32 = 1;
/// Byte length of a shard file header:
/// magic(8) + version(4) + shard_index(4) + snapshot_id(8).
pub const SHARD_HEADER_LEN: u64 = 24;

/// Section tags in the manifest's section table.
pub mod section {
    /// Per-shard user latent slab.
    pub const USER_LATENTS: u32 = 1;
    /// Per-shard group representation slab.
    pub const GROUP_REPS: u32 = 2;
}

/// How table rows are encoded on disk.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Quant {
    /// Raw little-endian `f32` — reads are bit-identical to the
    /// in-memory table.
    F32,
    /// IEEE 754 binary16 with round-to-nearest-even — 2× smaller.
    F16,
    /// Signed 8-bit with one `f32` scale per row — 4× smaller
    /// (well, `(4 + d) / (4 d)` of the original: ~3.6× at d = 8).
    I8,
}

impl Quant {
    /// The wire tag stored in the manifest.
    pub fn tag(self) -> u8 {
        match self {
            Self::F32 => 0,
            Self::F16 => 1,
            Self::I8 => 2,
        }
    }

    /// Parses a wire tag.
    pub fn from_tag(tag: u8) -> Result<Self, SnapshotError> {
        match tag {
            0 => Ok(Self::F32),
            1 => Ok(Self::F16),
            2 => Ok(Self::I8),
            other => Err(SnapshotError::corrupt(format!("unknown quantization tag {other}"))),
        }
    }

    /// Parses the human name used on CLI flags.
    pub fn from_name(name: &str) -> Result<Self, SnapshotError> {
        match name {
            "f32" => Ok(Self::F32),
            "f16" => Ok(Self::F16),
            "i8" => Ok(Self::I8),
            other => Err(SnapshotError::corrupt(format!("unknown quantization `{other}` (f32|f16|i8)"))),
        }
    }

    /// The CLI / report name.
    pub fn name(self) -> &'static str {
        match self {
            Self::F32 => "f32",
            Self::F16 => "f16",
            Self::I8 => "i8",
        }
    }

    /// Encoded byte length of one `dim`-wide row.
    pub fn row_bytes(self, dim: usize) -> usize {
        match self {
            Self::F32 => 4 * dim,
            Self::F16 => 2 * dim,
            Self::I8 => 4 + dim, // per-row f32 scale + one byte per value
        }
    }

    /// Encodes one row into `out` (appended). Deterministic: the same
    /// input slice always produces the same bytes.
    pub fn encode_row(self, row: &[f32], out: &mut Vec<u8>) {
        match self {
            Self::F32 => {
                for &v in row {
                    out.extend_from_slice(&v.to_bits().to_le_bytes());
                }
            }
            Self::F16 => {
                for &v in row {
                    out.extend_from_slice(&f32_to_f16_bits(v).to_le_bytes());
                }
            }
            Self::I8 => {
                let max_abs = row.iter().fold(0.0f32, |m, &v| m.max(v.abs()));
                let scale = if max_abs > 0.0 { max_abs / 127.0 } else { 0.0 };
                out.extend_from_slice(&scale.to_bits().to_le_bytes());
                if scale > 0.0 {
                    let inv = 127.0 / max_abs;
                    for &v in row {
                        // round() is round-half-away-from-zero: exact,
                        // platform-independent for finite inputs.
                        let q = (v * inv).round().clamp(-127.0, 127.0) as i8;
                        out.push(q as u8);
                    }
                } else {
                    out.extend(std::iter::repeat(0u8).take(row.len()));
                }
            }
        }
    }

    /// Decodes one encoded row (exactly [`Quant::row_bytes`] bytes)
    /// into `out` (appended). Errors on a short buffer instead of
    /// panicking.
    pub fn decode_row(self, dim: usize, bytes: &[u8], out: &mut Vec<f32>) -> Result<(), SnapshotError> {
        if bytes.len() < self.row_bytes(dim) {
            return Err(SnapshotError::Truncated { what: "table row".into() });
        }
        match self {
            Self::F32 => {
                for chunk in bytes.chunks_exact(4).take(dim) {
                    out.push(f32::from_bits(u32::from_le_bytes(le4(chunk)?)));
                }
            }
            Self::F16 => {
                for chunk in bytes.chunks_exact(2).take(dim) {
                    out.push(f16_bits_to_f32(u16::from_le_bytes(le2(chunk)?)));
                }
            }
            Self::I8 => {
                let (scale_bytes, rest) = bytes.split_at(4);
                let scale = f32::from_bits(u32::from_le_bytes(le4(scale_bytes)?));
                for &b in rest.iter().take(dim) {
                    out.push(b as i8 as f32 * scale);
                }
            }
        }
        Ok(())
    }
}

fn le4(chunk: &[u8]) -> Result<[u8; 4], SnapshotError> {
    chunk.try_into().map_err(|_| SnapshotError::Truncated { what: "4-byte word".into() })
}

fn le2(chunk: &[u8]) -> Result<[u8; 2], SnapshotError> {
    chunk.try_into().map_err(|_| SnapshotError::Truncated { what: "2-byte word".into() })
}

// ------------------------------------------------------------ checksum

/// Incremental FNV-1a-64 — the workspace's standard content digest
/// (same constants as the train-bench parameter checksum).
#[derive(Clone, Copy, Debug)]
pub struct Fnv64(u64);

impl Fnv64 {
    /// The FNV-1a offset basis.
    pub fn new() -> Self {
        Self(0xcbf2_9ce4_8422_2325)
    }

    /// Folds `bytes` into the digest.
    pub fn update(&mut self, bytes: &[u8]) {
        let mut h = self.0;
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        self.0 = h;
    }

    /// The digest so far.
    pub fn finish(self) -> u64 {
        self.0
    }
}

impl Default for Fnv64 {
    fn default() -> Self {
        Self::new()
    }
}

/// One-shot FNV-1a-64 of a byte slice.
pub fn fnv64(bytes: &[u8]) -> u64 {
    let mut h = Fnv64::new();
    h.update(bytes);
    h.finish()
}

// ------------------------------------------------- little-endian codec

/// A growable little-endian byte sink with checksum-friendly access.
#[derive(Default)]
pub struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    /// An empty writer.
    pub fn new() -> Self {
        Self { buf: Vec::new() }
    }

    /// Appends raw bytes.
    pub fn bytes(&mut self, b: &[u8]) {
        self.buf.extend_from_slice(b);
    }

    /// Appends a `u32` (LE).
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u64` (LE).
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// The accumulated bytes.
    pub fn as_slice(&self) -> &[u8] {
        &self.buf
    }
}

/// A cursor over a byte slice whose reads return typed errors instead
/// of panicking on truncation.
pub struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    /// A cursor at the start of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    /// Current offset.
    pub fn position(&self) -> usize {
        self.pos
    }

    /// Takes the next `n` bytes.
    pub fn take(&mut self, n: usize, what: &str) -> Result<&'a [u8], SnapshotError> {
        let end = self.pos.checked_add(n).filter(|&e| e <= self.buf.len());
        match end {
            Some(end) => {
                let s = self.buf.get(self.pos..end).unwrap_or(&[]);
                self.pos = end;
                Ok(s)
            }
            None => Err(SnapshotError::Truncated { what: what.into() }),
        }
    }

    /// Reads a `u32` (LE).
    pub fn u32(&mut self, what: &str) -> Result<u32, SnapshotError> {
        let b = self.take(4, what)?;
        Ok(u32::from_le_bytes(le4(b)?))
    }

    /// Reads a `u64` (LE).
    pub fn u64(&mut self, what: &str) -> Result<u64, SnapshotError> {
        let b = self.take(8, what)?;
        let arr: [u8; 8] =
            b.try_into().map_err(|_| SnapshotError::Truncated { what: what.into() })?;
        Ok(u64::from_le_bytes(arr))
    }
}

// ------------------------------------------------------ f16 conversion

/// `f32 →` IEEE 754 binary16 bits, round-to-nearest-even. Pure bit
/// arithmetic; NaN maps to a quiet NaN, overflow to ±inf.
pub fn f32_to_f16_bits(v: f32) -> u16 {
    let bits = v.to_bits();
    let sign = ((bits >> 16) & 0x8000) as u16;
    let exp = ((bits >> 23) & 0xff) as i32;
    let mant = bits & 0x007f_ffff;

    if exp == 0xff {
        // Inf / NaN: keep a mantissa bit set for NaN.
        return sign | 0x7c00 | if mant != 0 { 0x0200 } else { 0 };
    }
    // Unbias (127) and rebias (15).
    let unbiased = exp - 127;
    if unbiased > 15 {
        return sign | 0x7c00; // overflow → ±inf
    }
    if unbiased >= -14 {
        // Normal half. Round mantissa 23 → 10 bits to nearest-even.
        let mant16 = mant >> 13;
        let rem = mant & 0x1fff;
        let half = 0x1000;
        let mut out = sign as u32 | (((unbiased + 15) as u32) << 10) | mant16;
        if rem > half || (rem == half && (mant16 & 1) == 1) {
            out += 1; // may carry into the exponent — that is correct
        }
        return out as u16;
    }
    if unbiased >= -25 {
        // Subnormal half: implicit leading 1 becomes explicit.
        let full = mant | 0x0080_0000;
        let shift = (-14 - unbiased) + 13;
        let mant16 = full >> shift;
        let rem = full & ((1u32 << shift) - 1);
        let half = 1u32 << (shift - 1);
        let mut out = sign as u32 | mant16;
        if rem > half || (rem == half && (mant16 & 1) == 1) {
            out += 1;
        }
        return out as u16;
    }
    sign // underflow → ±0
}

/// IEEE 754 binary16 bits `→ f32`. Exact — every f16 value is
/// representable in f32.
pub fn f16_bits_to_f32(h: u16) -> f32 {
    let sign = ((h & 0x8000) as u32) << 16;
    let exp = ((h >> 10) & 0x1f) as u32;
    let mant = (h & 0x03ff) as u32;
    let bits = match (exp, mant) {
        (0, 0) => sign,                      // ±0
        (0, m) => {
            // Subnormal (value = m · 2⁻²⁴): normalise into f32. The
            // leading set bit of `m` sits at position p = 10 - shift;
            // it becomes the implicit one, so the f32 exponent is
            // 127 + (p - 24) = 113 - shift.
            let shift = m.leading_zeros() - 21;
            let m = (m << shift) & 0x03ff;
            let e = 113 - shift;
            sign | (e << 23) | (m << 13)
        }
        (0x1f, 0) => sign | 0x7f80_0000,     // ±inf
        (0x1f, m) => sign | 0x7f80_0000 | (m << 13), // NaN
        (e, m) => sign | ((e + 127 - 15) << 23) | (m << 13),
    };
    f32::from_bits(bits)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f16_roundtrip_is_exact_for_representable_values() {
        for v in [0.0f32, -0.0, 1.0, -1.0, 0.5, 2.0, 65504.0, -65504.0, 6.1035156e-5] {
            let h = f32_to_f16_bits(v);
            assert_eq!(f16_bits_to_f32(h), v, "{v}");
        }
    }

    #[test]
    fn f16_all_bit_patterns_roundtrip_through_f32() {
        // f16 → f32 → f16 must be the identity for every non-NaN
        // pattern (f32 represents all f16 values exactly).
        for h in 0..=u16::MAX {
            let f = f16_bits_to_f32(h);
            if f.is_nan() {
                assert!(f32_to_f16_bits(f) & 0x7c00 == 0x7c00);
                continue;
            }
            assert_eq!(f32_to_f16_bits(f), h, "pattern {h:#06x} ({f})");
        }
    }

    #[test]
    fn f16_rounds_to_nearest_even() {
        // 1 + 2^-11 is exactly halfway between 1.0 and the next f16;
        // nearest-even keeps 1.0. One ulp above rounds up.
        let halfway = f32::from_bits(0x3f80_1000);
        assert_eq!(f16_bits_to_f32(f32_to_f16_bits(halfway)), 1.0);
        let above = f32::from_bits(0x3f80_1001);
        assert!(f16_bits_to_f32(f32_to_f16_bits(above)) > 1.0);
    }

    #[test]
    fn f16_overflow_and_underflow_saturate() {
        assert_eq!(f16_bits_to_f32(f32_to_f16_bits(1e6)), f32::INFINITY);
        assert_eq!(f16_bits_to_f32(f32_to_f16_bits(-1e6)), f32::NEG_INFINITY);
        assert_eq!(f16_bits_to_f32(f32_to_f16_bits(1e-9)), 0.0);
    }

    #[test]
    fn i8_rows_decode_deterministically() {
        let q = Quant::I8;
        let row = [0.5f32, -1.0, 0.25, 0.0, 1.0, -0.125, 0.75, -0.5];
        let mut a = Vec::new();
        q.encode_row(&row, &mut a);
        let mut b = Vec::new();
        q.encode_row(&row, &mut b);
        assert_eq!(a, b);
        let mut out1 = Vec::new();
        q.decode_row(row.len(), &a, &mut out1).expect("decode");
        let mut out2 = Vec::new();
        q.decode_row(row.len(), &a, &mut out2).expect("decode");
        assert_eq!(
            out1.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            out2.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
        );
        // Max-magnitude entries are exact under i8: q = ±127.
        assert_eq!(out1[4], 1.0);
        assert_eq!(out1[1], -1.0);
    }

    #[test]
    fn i8_zero_row_encodes_zero_scale() {
        let q = Quant::I8;
        let row = [0.0f32; 4];
        let mut bytes = Vec::new();
        q.encode_row(&row, &mut bytes);
        let mut out = Vec::new();
        q.decode_row(4, &bytes, &mut out).expect("decode");
        assert_eq!(out, vec![0.0; 4]);
    }

    #[test]
    fn f32_rows_are_bit_exact() {
        let q = Quant::F32;
        let row = [1.5f32, -0.0, f32::MIN_POSITIVE, 3.1415927];
        let mut bytes = Vec::new();
        q.encode_row(&row, &mut bytes);
        let mut out = Vec::new();
        q.decode_row(4, &bytes, &mut out).expect("decode");
        let got: Vec<u32> = out.iter().map(|v| v.to_bits()).collect();
        let want: Vec<u32> = row.iter().map(|v| v.to_bits()).collect();
        assert_eq!(got, want);
    }

    #[test]
    fn short_rows_error_instead_of_panicking() {
        let mut out = Vec::new();
        assert!(Quant::F32.decode_row(4, &[0u8; 3], &mut out).is_err());
        assert!(Quant::I8.decode_row(4, &[0u8; 5], &mut out).is_err());
    }

    #[test]
    fn reader_errors_on_truncation() {
        let mut r = ByteReader::new(&[1, 2, 3]);
        assert!(r.u32("x").is_err());
        let mut r = ByteReader::new(&[1, 2, 3, 4]);
        assert_eq!(r.u32("x").map_err(|e| e.to_string()), Ok(0x04030201));
    }

    #[test]
    fn fnv_matches_reference_vector() {
        // FNV-1a("a") per the published reference.
        assert_eq!(fnv64(b"a"), 0xaf63dc4c8601ec8c);
        assert_eq!(fnv64(b""), 0xcbf29ce484222325);
    }
}
