//! `snapshot_check` — runnable format-conformance smoke for binary
//! model snapshots, wired into `scripts/tier1.sh`.
//!
//! Three modes:
//!
//! * `--smoke` — in a scratch directory: write a fixture snapshot,
//!   read it back bit-exactly, then corrupt copies six different ways
//!   (bad magic, future version, truncated manifest, truncated shard,
//!   slab bit rot, cross-snapshot shard swap) and require the exact
//!   typed [`SnapshotError`] for each. Any panic or wrong variant
//!   fails the run.
//! * `--golden DIR` — regenerate the canonical fixture for every row
//!   encoding and byte-compare against the committed files in `DIR`
//!   (format-drift detection), then open and checksum-verify `DIR`
//!   itself.
//! * `--write-golden DIR` — (re)write the canonical fixture, used once
//!   to create the committed golden files and again after an
//!   intentional format change (bump [`FORMAT_VERSION`] first).
//!
//! This file lives under `crates/snapshot/src/` and therefore inside
//! the `groupsa-lint` panic-safety scope: every failure path is a
//! typed error surfaced through `main`'s exit code.

use groupsa_snapshot::{shard_name, Quant, Snapshot, SnapshotError, SnapshotMeta, SnapshotWriter, MANIFEST_NAME};
use groupsa_tensor::Matrix;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

// Canonical fixture universe — small enough to commit, varied enough
// to exercise cold users, empty groups, and multi-row reps.
const NUM_USERS: usize = 23;
const NUM_ITEMS: usize = 17;
const NUM_GROUPS: usize = 6;
const DIM: usize = 8;
const SHARDS: u32 = 2;

/// Deterministic pseudo-table value (same recipe as the integration
/// fixtures): varied sign/magnitude from pure integer arithmetic, so
/// every build of every process computes identical bits.
fn value(seed: usize, row: usize, col: usize) -> f32 {
    let x = (seed.wrapping_mul(31) + row.wrapping_mul(131) + col.wrapping_mul(7)) % 29;
    (x as f32) * 0.173 - 2.4
}

/// User latents: every 5th user is cold (no latent row).
fn fixture_latents() -> Vec<Option<Matrix>> {
    (0..NUM_USERS)
        .map(|u| {
            if u % 5 == 4 {
                None
            } else {
                Some(Matrix::from_vec(1, DIM, (0..DIM).map(|k| value(1, u, k)).collect()))
            }
        })
        .collect()
}

/// Group reps with varying member counts, including empty groups.
fn fixture_reps() -> Vec<Matrix> {
    (0..NUM_GROUPS)
        .map(|g| {
            let rows = g % 4;
            let data = (0..rows * DIM).map(|i| value(2, g, i)).collect();
            Matrix::from_vec(rows, DIM, data)
        })
        .collect()
}

/// Writes the canonical fixture with the given encoding into `dir`.
fn write_fixture(dir: &Path, quant: Quant) -> Result<u64, String> {
    let meta = SnapshotMeta {
        num_users: NUM_USERS,
        num_items: NUM_ITEMS,
        num_groups: NUM_GROUPS,
        dim: DIM,
        shards: SHARDS,
        quant,
    };
    let mut w = SnapshotWriter::create(dir, meta).map_err(|e| e.to_string())?;
    for latent in fixture_latents() {
        w.push_user(latent.as_ref().map(|m| m.as_slice())).map_err(|e| e.to_string())?;
    }
    for reps in fixture_reps() {
        w.push_group(&reps).map_err(|e| e.to_string())?;
    }
    w.finish().map_err(|e| e.to_string())
}

/// A scratch directory under the OS temp dir, wiped before use.
fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("groupsa-snapshot-check-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn matrices_equal(a: &Matrix, b: &Matrix) -> bool {
    a.rows() == b.rows()
        && a.cols() == b.cols()
        && a.as_slice().iter().zip(b.as_slice()).all(|(x, y)| x.to_bits() == y.to_bits())
}

// ------------------------------------------------------------- smoke

/// Round-trip: an f32 snapshot must return the exact bits that went in.
fn check_roundtrip() -> Result<(), String> {
    let dir = scratch("roundtrip");
    write_fixture(&dir, Quant::F32)?;
    let snap = Snapshot::open(&dir).map_err(|e| format!("open round-trip snapshot: {e}"))?;
    snap.verify().map_err(|e| format!("verify round-trip snapshot: {e}"))?;
    let latents = fixture_latents();
    for (u, expected) in latents.iter().enumerate() {
        let got = snap.user_latent(u).map_err(|e| format!("user {u}: {e}"))?;
        let same = match (&got, expected) {
            (None, None) => true,
            (Some(g), Some(e)) => matrices_equal(g, e),
            _ => false,
        };
        if !same {
            return Err(format!("user {u} latent did not round-trip bit-exactly"));
        }
    }
    for (g, expected) in fixture_reps().iter().enumerate() {
        let got = snap.group_rep(g).map_err(|e| format!("group {g}: {e}"))?;
        if !matrices_equal(&got, expected) {
            return Err(format!("group {g} reps did not round-trip bit-exactly"));
        }
    }
    if !matches!(snap.user_latent(NUM_USERS), Err(SnapshotError::OutOfRange { .. })) {
        return Err("out-of-range user read was not a typed OutOfRange error".into());
    }
    let _ = std::fs::remove_dir_all(&dir);
    println!("  round-trip: {NUM_USERS} users / {NUM_GROUPS} groups bit-exact, verify ok");
    Ok(())
}

/// Overwrites `len(bytes)` bytes of `path` at `offset`.
fn patch(path: &Path, offset: usize, bytes: &[u8]) -> Result<(), String> {
    let mut data = std::fs::read(path).map_err(|e| format!("read {}: {e}", path.display()))?;
    let end = offset + bytes.len();
    let Some(slot) = data.get_mut(offset..end) else {
        return Err(format!("patch range {offset}..{end} outside {}", path.display()));
    };
    slot.copy_from_slice(bytes);
    std::fs::write(path, &data).map_err(|e| format!("write {}: {e}", path.display()))
}

/// Patches the manifest body and recomputes its trailing checksum, so
/// header-level rejections (magic, version) are tested in isolation
/// rather than shadowed by the checksum gate.
fn patch_manifest_rechecksum(dir: &Path, offset: usize, bytes: &[u8]) -> Result<(), String> {
    let path = dir.join(MANIFEST_NAME);
    let mut data = std::fs::read(&path).map_err(|e| format!("read manifest: {e}"))?;
    let end = offset + bytes.len();
    let Some(slot) = data.get_mut(offset..end) else {
        return Err(format!("patch range {offset}..{end} outside manifest"));
    };
    slot.copy_from_slice(bytes);
    let Some(body_len) = data.len().checked_sub(8) else {
        return Err("manifest shorter than its trailing checksum".into());
    };
    let Some(body) = data.get(..body_len) else {
        return Err("manifest body range invalid".into());
    };
    let sum = groupsa_snapshot::fnv64(body).to_le_bytes();
    let Some(tail) = data.get_mut(body_len..) else {
        return Err("manifest checksum range invalid".into());
    };
    tail.copy_from_slice(&sum);
    std::fs::write(&path, &data).map_err(|e| format!("write manifest: {e}"))
}

/// Truncates `path` to `keep` bytes from the end removed.
fn truncate_tail(path: &Path, drop: usize) -> Result<(), String> {
    let data = std::fs::read(path).map_err(|e| format!("read {}: {e}", path.display()))?;
    let Some(kept) = data.get(..data.len().saturating_sub(drop)) else {
        return Err("truncation range invalid".into());
    };
    std::fs::write(path, kept).map_err(|e| format!("write {}: {e}", path.display()))
}

/// One corruption case: sets up a fresh fixture, applies `mutate`, and
/// requires `expect` to classify the resulting typed error.
fn corrupt_case(
    tag: &str,
    what: &str,
    mutate: impl Fn(&Path) -> Result<(), String>,
    expect: impl Fn(&Result<Snapshot, SnapshotError>) -> bool,
) -> Result<(), String> {
    let dir = scratch(tag);
    write_fixture(&dir, Quant::F32)?;
    mutate(&dir)?;
    let outcome = Snapshot::open(&dir);
    let ok = expect(&outcome);
    if !ok {
        let got = match &outcome {
            Ok(_) => "Ok(..)".to_string(),
            Err(e) => format!("{e}"),
        };
        return Err(format!("{what}: expected typed rejection, got: {got}"));
    }
    let _ = std::fs::remove_dir_all(&dir);
    println!("  corrupt: {what} -> typed error");
    Ok(())
}

/// Every corruption family must produce its exact typed error.
fn check_corrupt() -> Result<(), String> {
    corrupt_case(
        "magic",
        "manifest bad magic",
        |d| patch_manifest_rechecksum(d, 0, b"NOTSNAP\0"),
        |r| matches!(r, Err(SnapshotError::BadMagic { what: "manifest" })),
    )?;
    corrupt_case(
        "version",
        "manifest future version",
        |d| patch_manifest_rechecksum(d, 8, &9999u32.to_le_bytes()),
        |r| matches!(r, Err(SnapshotError::UnsupportedVersion { found: 9999 })),
    )?;
    corrupt_case(
        "trunc-manifest",
        "truncated manifest",
        |d| truncate_tail(&d.join(MANIFEST_NAME), 11),
        |r| matches!(r, Err(SnapshotError::ChecksumMismatch { .. } | SnapshotError::Truncated { .. })),
    )?;
    corrupt_case(
        "trunc-shard",
        "truncated shard slab",
        |d| truncate_tail(&d.join(shard_name(1)), 7),
        |r| matches!(r, Err(SnapshotError::Truncated { .. })),
    )?;
    corrupt_case(
        "shard-magic",
        "shard bad magic",
        |d| patch(&d.join(shard_name(0)), 0, b"XXXXXXXX"),
        |r| matches!(r, Err(SnapshotError::BadMagic { what: "shard" })),
    )?;
    corrupt_case(
        "shard-swap",
        "swapped shard files",
        |d| {
            let a = d.join(shard_name(0));
            let b = d.join(shard_name(1));
            let tmp = d.join("shard-swap.tmp");
            std::fs::rename(&a, &tmp).map_err(|e| format!("swap: {e}"))?;
            std::fs::rename(&b, &a).map_err(|e| format!("swap: {e}"))?;
            std::fs::rename(&tmp, &b).map_err(|e| format!("swap: {e}"))
        },
        |r| matches!(r, Err(SnapshotError::ShardMismatch { .. })),
    )?;

    // Slab bit rot passes the lazy open but must fail `verify()`.
    let dir = scratch("bit-rot");
    write_fixture(&dir, Quant::F32)?;
    // First user-slab byte sits right after the 24-byte shard header.
    let shard = dir.join(shard_name(0));
    let data = std::fs::read(&shard).map_err(|e| format!("read shard: {e}"))?;
    let Some(&byte) = data.get(24) else {
        return Err("shard 0 has no slab bytes to corrupt".into());
    };
    patch(&shard, 24, &[byte ^ 0x40])?;
    let snap = Snapshot::open(&dir).map_err(|e| format!("bit rot must pass lazy open, got: {e}"))?;
    if !matches!(snap.verify(), Err(SnapshotError::ChecksumMismatch { .. })) {
        return Err("slab bit rot was not caught by verify()".into());
    }
    let _ = std::fs::remove_dir_all(&dir);
    println!("  corrupt: slab bit rot -> lazy open ok, verify() ChecksumMismatch");
    Ok(())
}

// ------------------------------------------------------------- golden

/// The encodings covered by the committed golden fixture, one
/// subdirectory each.
const GOLDEN_QUANTS: [Quant; 3] = [Quant::F32, Quant::F16, Quant::I8];

/// Writes the canonical fixture tree (one subdir per encoding).
fn write_golden(dir: &Path) -> Result<(), String> {
    for quant in GOLDEN_QUANTS {
        let sub = dir.join(quant.name());
        let _ = std::fs::remove_dir_all(&sub);
        let id = write_fixture(&sub, quant)?;
        println!("  wrote {} (snapshot id {id:016x})", sub.display());
    }
    Ok(())
}

/// Regenerates the fixture and byte-compares it against the committed
/// tree — any difference is format drift.
fn check_golden(dir: &Path) -> Result<(), String> {
    let fresh_root = scratch("golden");
    for quant in GOLDEN_QUANTS {
        let committed = dir.join(quant.name());
        let fresh = fresh_root.join(quant.name());
        write_fixture(&fresh, quant)?;
        let mut names: Vec<String> = vec![MANIFEST_NAME.to_string()];
        names.extend((0..SHARDS).map(shard_name));
        for name in &names {
            let want = std::fs::read(fresh.join(name))
                .map_err(|e| format!("read regenerated {}/{name}: {e}", quant.name()))?;
            let got = std::fs::read(committed.join(name)).map_err(|e| {
                format!("read committed {}/{name}: {e} (run --write-golden to create it)", quant.name())
            })?;
            if want != got {
                return Err(format!(
                    "format drift: {}/{name} differs from a fresh write ({} vs {} bytes). \
                     If the change is intentional, bump FORMAT_VERSION and regenerate with --write-golden.",
                    quant.name(),
                    got.len(),
                    want.len()
                ));
            }
        }
        // The committed tree must also open and checksum clean.
        let snap = Snapshot::open(&committed).map_err(|e| format!("open committed {}: {e}", quant.name()))?;
        snap.verify().map_err(|e| format!("verify committed {}: {e}", quant.name()))?;
        if snap.meta().num_users != NUM_USERS || snap.meta().dim != DIM {
            return Err(format!("committed {} meta does not match the canonical fixture", quant.name()));
        }
        println!("  golden {}: byte-identical to a fresh write, verify ok", quant.name());
    }
    let _ = std::fs::remove_dir_all(&fresh_root);
    Ok(())
}

// --------------------------------------------------------------- main

const USAGE: &str = "usage: snapshot_check --smoke | --golden DIR | --write-golden DIR";

fn run(args: &[String]) -> Result<(), String> {
    match (args.first().map(String::as_str), args.get(1)) {
        (Some("--smoke"), None) => {
            println!("snapshot_check --smoke");
            check_roundtrip()?;
            check_corrupt()
        }
        (Some("--golden"), Some(dir)) => {
            println!("snapshot_check --golden {dir}");
            check_golden(Path::new(dir))
        }
        (Some("--write-golden"), Some(dir)) => {
            println!("snapshot_check --write-golden {dir}");
            write_golden(Path::new(dir))
        }
        _ => Err(USAGE.to_string()),
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => {
            println!("snapshot_check: ok");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("snapshot_check: {e}");
            ExitCode::FAILURE
        }
    }
}
