//! Lazy snapshot reader: O(1)-per-entity row paging.
//!
//! [`Snapshot::open`] reads and validates the manifest (magic, version,
//! trailing checksum, section geometry, shard headers, file sizes) but
//! touches **no table bytes** — at a million users the resident
//! footprint is the presence bitmap plus the group index, a few
//! hundred KiB. Each [`Snapshot::user_latent`] / [`Snapshot::group_rep`]
//! call is one positioned read of exactly the rows requested.
//!
//! Full slab checksums are verified by the opt-in [`Snapshot::verify`]
//! — an eager check at open would force reading every byte and defeat
//! lazy loading; truncation (the common partial-copy failure) is still
//! caught at open by comparing file sizes against the section table.

use crate::error::SnapshotError;
use crate::format::{
    section, ByteReader, Fnv64, Quant, FORMAT_VERSION, MANIFEST_MAGIC, SHARD_HEADER_LEN,
    SHARD_MAGIC,
};
use crate::tables::{TableRef, TableStore};
use crate::writer::{compute_snapshot_id, shard_name, SnapshotMeta, MANIFEST_NAME};
use groupsa_tensor::Matrix;
use std::fs;
use std::path::{Path, PathBuf};

/// One parsed section-table entry.
#[derive(Clone, Copy, Debug)]
struct Section {
    tag: u32,
    shard: u32,
    offset: u64,
    len: u64,
    checksum: u64,
}

/// A shard file handle supporting positioned reads without a seek
/// cursor, so concurrent readers never contend.
#[cfg(unix)]
#[derive(Debug)]
struct ShardFile(fs::File);

#[cfg(unix)]
impl ShardFile {
    fn open(path: &Path) -> Result<Self, SnapshotError> {
        fs::File::open(path)
            .map(Self)
            .map_err(|e| SnapshotError::io(format!("open {}", path.display()), e))
    }

    fn read_at(&self, buf: &mut [u8], offset: u64, what: &str) -> Result<(), SnapshotError> {
        use std::os::unix::fs::FileExt;
        self.0.read_exact_at(buf, offset).map_err(|e| match e.kind() {
            std::io::ErrorKind::UnexpectedEof => SnapshotError::Truncated { what: what.into() },
            _ => SnapshotError::io(format!("read {what}"), e),
        })
    }

    fn len(&self) -> Result<u64, SnapshotError> {
        self.0
            .metadata()
            .map(|m| m.len())
            .map_err(|e| SnapshotError::io("stat shard", e))
    }
}

/// Portable fallback: a mutex-guarded seek+read. Correct everywhere,
/// slower under contention; unix builds use `read_exact_at` above.
#[cfg(not(unix))]
#[derive(Debug)]
struct ShardFile(std::sync::Mutex<fs::File>);

#[cfg(not(unix))]
impl ShardFile {
    fn open(path: &Path) -> Result<Self, SnapshotError> {
        fs::File::open(path)
            .map(|f| Self(std::sync::Mutex::new(f)))
            .map_err(|e| SnapshotError::io(format!("open {}", path.display()), e))
    }

    fn read_at(&self, buf: &mut [u8], offset: u64, what: &str) -> Result<(), SnapshotError> {
        use std::io::{Read, Seek, SeekFrom};
        let mut file = self
            .0
            .lock()
            .map_err(|_| SnapshotError::corrupt("shard file lock poisoned"))?;
        file.seek(SeekFrom::Start(offset))
            .map_err(|e| SnapshotError::io(format!("seek {what}"), e))?;
        file.read_exact(buf).map_err(|e| match e.kind() {
            std::io::ErrorKind::UnexpectedEof => SnapshotError::Truncated { what: what.into() },
            _ => SnapshotError::io(format!("read {what}"), e),
        })
    }

    fn len(&self) -> Result<u64, SnapshotError> {
        let file = self
            .0
            .lock()
            .map_err(|_| SnapshotError::corrupt("shard file lock poisoned"))?;
        file.metadata()
            .map(|m| m.len())
            .map_err(|e| SnapshotError::io("stat shard", e))
    }
}

/// An open snapshot: validated manifest metadata plus one handle per
/// shard. Table rows are read on demand.
#[derive(Debug)]
pub struct Snapshot {
    dir: PathBuf,
    meta: SnapshotMeta,
    snapshot_id: u64,
    /// `(user_section, group_section)` per shard.
    shard_sections: Vec<(Section, Section)>,
    presence: Vec<u8>,
    /// `(absolute byte offset in shard, rows)` per group.
    group_index: Vec<(u64, u32)>,
    files: Vec<ShardFile>,
}

impl Snapshot {
    /// Opens and validates `dir` as a snapshot. Validation covers the
    /// manifest magic/version/trailing-checksum, section geometry,
    /// every shard header, and file-size truncation — but reads no
    /// table data.
    pub fn open(dir: impl AsRef<Path>) -> Result<Self, SnapshotError> {
        let dir = dir.as_ref().to_path_buf();
        let manifest_path = dir.join(MANIFEST_NAME);
        let bytes = fs::read(&manifest_path)
            .map_err(|e| SnapshotError::io(format!("read {}", manifest_path.display()), e))?;

        // Trailing checksum covers every preceding byte.
        if bytes.len() < 8 {
            return Err(SnapshotError::Truncated { what: "manifest".into() });
        }
        let body_len = bytes.len() - 8;
        let body = bytes.get(..body_len).unwrap_or(&[]);
        let stored = {
            let mut r = ByteReader::new(bytes.get(body_len..).unwrap_or(&[]));
            r.u64("manifest checksum")?
        };
        if crate::format::fnv64(body) != stored {
            return Err(SnapshotError::ChecksumMismatch { section: "manifest".into() });
        }

        let mut r = ByteReader::new(body);
        let magic = r.take(8, "manifest magic")?;
        if magic != MANIFEST_MAGIC {
            return Err(SnapshotError::BadMagic { what: "manifest" });
        }
        let version = r.u32("manifest version")?;
        if version != FORMAT_VERSION {
            return Err(SnapshotError::UnsupportedVersion { found: version });
        }
        let quant = Quant::from_tag(r.u32("quant tag")? as u8)?;
        let num_users = r.u64("num_users")? as usize;
        let num_items = r.u64("num_items")? as usize;
        let num_groups = r.u64("num_groups")? as usize;
        let dim = r.u32("dim")? as usize;
        let shards = r.u32("shards")?;
        if dim == 0 || shards == 0 {
            return Err(SnapshotError::corrupt("zero dim or shard count"));
        }
        let snapshot_id = r.u64("snapshot id")?;

        let section_count = r.u32("section count")? as usize;
        if section_count != shards as usize * 2 {
            return Err(SnapshotError::corrupt(format!(
                "expected {} sections for {shards} shards, manifest lists {section_count}",
                shards * 2
            )));
        }
        let mut sections = Vec::with_capacity(section_count);
        for _ in 0..section_count {
            sections.push(Section {
                tag: r.u32("section tag")?,
                shard: r.u32("section shard")?,
                offset: r.u64("section offset")?,
                len: r.u64("section len")?,
                checksum: r.u64("section checksum")?,
            });
        }

        let bitmap_len = r.u64("presence bitmap length")? as usize;
        if bitmap_len != num_users.div_ceil(8) {
            return Err(SnapshotError::corrupt(format!(
                "presence bitmap is {bitmap_len} bytes for {num_users} users"
            )));
        }
        let presence = r.take(bitmap_len, "presence bitmap")?.to_vec();
        let mut group_index = Vec::with_capacity(num_groups);
        for _ in 0..num_groups {
            let offset = r.u64("group index offset")?;
            let rows = r.u32("group index rows")?;
            group_index.push((offset, rows));
        }
        if r.position() != body.len() {
            return Err(SnapshotError::corrupt("manifest has trailing bytes"));
        }

        let meta = SnapshotMeta { num_users, num_items, num_groups, dim, shards, quant };

        // The snapshot id must be derivable from the content metadata —
        // a mismatch means the manifest was assembled from parts of
        // different snapshots.
        let flat: Vec<(u32, u32, u64, u64, u64)> =
            sections.iter().map(|s| (s.tag, s.shard, s.offset, s.len, s.checksum)).collect();
        if compute_snapshot_id(&meta, &flat) != snapshot_id {
            return Err(SnapshotError::ChecksumMismatch { section: "snapshot id".into() });
        }

        // Geometry: per shard, one user section (fixed arithmetic
        // length) immediately followed by one group section.
        let row_bytes = quant.row_bytes(dim) as u64;
        let mut shard_sections = Vec::with_capacity(shards as usize);
        for s in 0..shards {
            let user = sections
                .iter()
                .find(|sec| sec.shard == s && sec.tag == section::USER_LATENTS)
                .copied()
                .ok_or_else(|| {
                    SnapshotError::corrupt(format!("shard {s} has no user-latent section"))
                })?;
            let group = sections
                .iter()
                .find(|sec| sec.shard == s && sec.tag == section::GROUP_REPS)
                .copied()
                .ok_or_else(|| {
                    SnapshotError::corrupt(format!("shard {s} has no group-rep section"))
                })?;
            let users_in_shard = shard_rows(num_users, shards, s);
            if user.offset != SHARD_HEADER_LEN || user.len != users_in_shard * row_bytes {
                return Err(SnapshotError::corrupt(format!(
                    "shard {s} user section geometry is inconsistent with the universe"
                )));
            }
            if group.offset != user.offset + user.len {
                return Err(SnapshotError::corrupt(format!(
                    "shard {s} group section does not follow the user section"
                )));
            }
            shard_sections.push((user, group));
        }

        // Every group-index entry must land inside its shard's group
        // section.
        for (g, &(offset, rows)) in group_index.iter().enumerate() {
            let shard_idx = g % shards as usize;
            let (_, group_sec) = shard_sections
                .get(shard_idx)
                .ok_or(SnapshotError::corrupt("shard index out of range"))?;
            let end = offset.checked_add(rows as u64 * row_bytes);
            let in_bounds = offset >= group_sec.offset
                && end.is_some_and(|e| e <= group_sec.offset + group_sec.len);
            if !in_bounds {
                return Err(SnapshotError::corrupt(format!(
                    "group {g} rows fall outside shard {shard_idx}'s group section"
                )));
            }
        }

        // Open shards: header must agree with the manifest, and the
        // file must physically contain every section (truncation
        // check — the one slab-level failure open() must catch, since
        // lazy reads would otherwise fail mid-serve).
        let mut files = Vec::with_capacity(shards as usize);
        for (s, (_user_sec, group_sec)) in shard_sections.iter().enumerate() {
            let path = dir.join(shard_name(s as u32));
            let file = ShardFile::open(&path)?;
            let mut header = [0u8; SHARD_HEADER_LEN as usize];
            file.read_at(&mut header, 0, "shard header")?;
            let mut hr = ByteReader::new(&header);
            if hr.take(8, "shard magic")? != SHARD_MAGIC {
                return Err(SnapshotError::BadMagic { what: "shard" });
            }
            let shard_version = hr.u32("shard version")?;
            if shard_version != FORMAT_VERSION {
                return Err(SnapshotError::UnsupportedVersion { found: shard_version });
            }
            let index = hr.u32("shard index")?;
            if index != s as u32 {
                return Err(SnapshotError::ShardMismatch {
                    index: s as u32,
                    reason: format!("file says it is shard {index}"),
                });
            }
            let id = hr.u64("shard snapshot id")?;
            if id != snapshot_id {
                return Err(SnapshotError::ShardMismatch {
                    index: s as u32,
                    reason: "snapshot id does not match the manifest".into(),
                });
            }
            let expected_end = group_sec.offset + group_sec.len;
            let actual = file.len()?;
            if actual < expected_end {
                return Err(SnapshotError::Truncated {
                    what: format!("shard {s} ({actual} bytes, sections need {expected_end})"),
                });
            }
            files.push(file);
        }

        Ok(Self { dir, meta, snapshot_id, shard_sections, presence, group_index, files })
    }

    /// The snapshot's declared universe and encoding.
    pub fn meta(&self) -> &SnapshotMeta {
        &self.meta
    }

    /// The content-derived snapshot id.
    pub fn snapshot_id(&self) -> u64 {
        self.snapshot_id
    }

    /// The directory this snapshot was opened from.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Whether `user` has a stored latent (presence bitmap; no I/O).
    pub fn has_latent(&self, user: usize) -> bool {
        self.presence
            .get(user / 8)
            .is_some_and(|byte| byte & (1 << (user % 8)) != 0)
    }

    /// Reads one user latent: one positioned read of `row_bytes`, or
    /// `Ok(None)` without touching disk when the presence bit is clear.
    pub fn user_latent(&self, user: usize) -> Result<Option<Matrix>, SnapshotError> {
        if user >= self.meta.num_users {
            return Err(SnapshotError::OutOfRange {
                entity: "user",
                id: user,
                len: self.meta.num_users,
            });
        }
        if !self.has_latent(user) {
            return Ok(None);
        }
        let shard_idx = user % self.meta.shards as usize;
        let pos = (user / self.meta.shards as usize) as u64;
        let row_bytes = self.meta.quant.row_bytes(self.meta.dim);
        let (user_sec, _) = self
            .shard_sections
            .get(shard_idx)
            .ok_or(SnapshotError::corrupt("shard index out of range"))?;
        let file = self
            .files
            .get(shard_idx)
            .ok_or(SnapshotError::corrupt("shard index out of range"))?;
        let mut buf = vec![0u8; row_bytes];
        file.read_at(&mut buf, user_sec.offset + pos * row_bytes as u64, "user latent row")?;
        let mut values = Vec::with_capacity(self.meta.dim);
        self.meta.quant.decode_row(self.meta.dim, &buf, &mut values)?;
        Ok(Some(Matrix::from_vec(1, self.meta.dim, values)))
    }

    /// Reads one group's `l×d` member representations: one positioned
    /// read of `l · row_bytes`.
    pub fn group_rep(&self, group: usize) -> Result<Matrix, SnapshotError> {
        let &(offset, rows) = self.group_index.get(group).ok_or(SnapshotError::OutOfRange {
            entity: "group",
            id: group,
            len: self.meta.num_groups,
        })?;
        let rows = rows as usize;
        let shard_idx = group % self.meta.shards as usize;
        let file = self
            .files
            .get(shard_idx)
            .ok_or(SnapshotError::corrupt("shard index out of range"))?;
        let row_bytes = self.meta.quant.row_bytes(self.meta.dim);
        let mut buf = vec![0u8; rows * row_bytes];
        file.read_at(&mut buf, offset, "group rep rows")?;
        let mut values = Vec::with_capacity(rows * self.meta.dim);
        for row in buf.chunks_exact(row_bytes) {
            self.meta.quant.decode_row(self.meta.dim, row, &mut values)?;
        }
        Ok(Matrix::from_vec(rows, self.meta.dim, values))
    }

    /// Streams every section and recomputes its checksum against the
    /// manifest. Opt-in because it reads every table byte — the lazy
    /// open intentionally does not.
    pub fn verify(&self) -> Result<(), SnapshotError> {
        const CHUNK: usize = 1 << 20;
        for (s, (user_sec, group_sec)) in self.shard_sections.iter().enumerate() {
            let file = self
                .files
                .get(s)
                .ok_or(SnapshotError::corrupt("shard index out of range"))?;
            for (sec, name) in [(user_sec, "user latents"), (group_sec, "group reps")] {
                let mut hasher = Fnv64::new();
                let mut remaining = sec.len;
                let mut offset = sec.offset;
                let mut buf = vec![0u8; CHUNK.min(sec.len as usize).max(1)];
                while remaining > 0 {
                    let n = (remaining as usize).min(buf.len());
                    let slice = buf.get_mut(..n).unwrap_or(&mut []);
                    file.read_at(slice, offset, name)?;
                    hasher.update(slice);
                    offset += n as u64;
                    remaining -= n as u64;
                }
                if hasher.finish() != sec.checksum {
                    return Err(SnapshotError::ChecksumMismatch {
                        section: format!("shard {s} {name}"),
                    });
                }
            }
        }
        Ok(())
    }

    /// Bytes resident in memory for this snapshot: index structures
    /// only — table rows are read per request and never cached.
    pub fn resident_bytes(&self) -> usize {
        self.presence.len()
            + self.group_index.len() * std::mem::size_of::<(u64, u32)>()
            + self.shard_sections.len() * 2 * std::mem::size_of::<Section>()
    }
}

/// Rows stored in shard `s` under modulo sharding: ids `s, s+shards,
/// s+2·shards, …` below `num`.
fn shard_rows(num: usize, shards: u32, s: u32) -> u64 {
    let shards = shards as usize;
    let s = s as usize;
    if s >= num {
        0
    } else {
        ((num - s).div_ceil(shards)) as u64
    }
}

/// [`TableStore`] over an open [`Snapshot`]: every access decodes
/// fresh rows from disk (`TableRef::Owned`), keeping residency at the
/// index-only floor.
pub struct SnapshotTables {
    snapshot: Snapshot,
}

impl SnapshotTables {
    /// Wraps an open snapshot.
    pub fn new(snapshot: Snapshot) -> Self {
        Self { snapshot }
    }

    /// The underlying snapshot (meta, verify, snapshot id).
    pub fn snapshot(&self) -> &Snapshot {
        &self.snapshot
    }
}

impl TableStore for SnapshotTables {
    fn num_users(&self) -> usize {
        self.snapshot.meta.num_users
    }

    fn num_groups(&self) -> usize {
        self.snapshot.meta.num_groups
    }

    fn dim(&self) -> usize {
        self.snapshot.meta.dim
    }

    fn user_latent(&self, user: usize) -> Result<Option<TableRef<'_>>, SnapshotError> {
        Ok(self.snapshot.user_latent(user)?.map(TableRef::Owned))
    }

    fn group_rep(&self, group: usize) -> Result<TableRef<'_>, SnapshotError> {
        Ok(TableRef::Owned(self.snapshot.group_rep(group)?))
    }

    fn resident_bytes(&self) -> usize {
        self.snapshot.resident_bytes()
    }

    fn backing(&self) -> &'static str {
        "snapshot"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_rows_partitions_the_universe() {
        for num in [0usize, 1, 7, 8, 9, 1000] {
            for shards in [1u32, 2, 3, 7, 16] {
                let total: u64 = (0..shards).map(|s| shard_rows(num, shards, s)).sum();
                assert_eq!(total, num as u64, "num={num} shards={shards}");
            }
        }
    }
}
