//! Streaming sharded snapshot writer.
//!
//! The writer never holds a table in memory: callers push user rows in
//! id order, then group rep matrices in id order, and each row goes
//! straight to its shard file through a buffered writer. Only O(users)
//! of *metadata* (the presence bitmap and the group index) is
//! accumulated for the manifest — at a million users that is 125 KiB,
//! not the 32 MiB table. This is what lets the million-scale bench
//! generate-and-write in chunks without ever materializing the tables.
//!
//! Sharding is modulo: user `u` lands in shard `u % shards` at row
//! position `u / shards`, so pushing users in ascending id order
//! appends sequentially within every shard and the reader can seek to
//! any row with two divisions. Group `g` lands in shard `g % shards`;
//! its (variable-row) byte offset is recorded in the manifest's group
//! index.

use crate::error::SnapshotError;
use crate::format::{
    section, ByteWriter, Fnv64, Quant, FORMAT_VERSION, MANIFEST_MAGIC, SHARD_HEADER_LEN,
    SHARD_MAGIC,
};
use groupsa_tensor::Matrix;
use std::fs;
use std::io::{Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// The fixed parameters of one snapshot, declared up front so the
/// writer can stream against a known universe.
#[derive(Clone, Copy, Debug)]
pub struct SnapshotMeta {
    /// User universe size (exactly this many `push_user` calls).
    pub num_users: usize,
    /// Item universe size (recorded for serving-side validation).
    pub num_items: usize,
    /// Group universe size (exactly this many `push_group` calls).
    pub num_groups: usize,
    /// Latent dimensionality `d`.
    pub dim: usize,
    /// Number of shard files (≥ 1).
    pub shards: u32,
    /// Row encoding.
    pub quant: Quant,
}

/// The manifest file name inside a snapshot directory.
pub const MANIFEST_NAME: &str = "manifest.gsnap";

/// The shard file name for `index`.
pub fn shard_name(index: u32) -> String {
    format!("shard-{index:04}.gslab")
}

struct ShardOut {
    file: std::io::BufWriter<fs::File>,
    /// Current absolute write offset.
    offset: u64,
    user_checksum: Fnv64,
    group_checksum: Fnv64,
    /// `(offset, len)` of the user slab, fixed once groups begin.
    user_section: Option<(u64, u64)>,
}

/// Streams one snapshot to a directory. Construction order is strict:
/// every user (ascending id), then every group (ascending id), then
/// [`SnapshotWriter::finish`].
pub struct SnapshotWriter {
    dir: PathBuf,
    meta: SnapshotMeta,
    shards: Vec<ShardOut>,
    next_user: usize,
    next_group: usize,
    presence: Vec<u8>,
    group_index: Vec<(u64, u32)>,
    row_buf: Vec<u8>,
    zero_row: Vec<u8>,
}

impl SnapshotWriter {
    /// Creates the snapshot directory (if needed) and the shard files,
    /// writing placeholder headers that [`SnapshotWriter::finish`]
    /// patches with the content-derived snapshot id.
    pub fn create(dir: impl AsRef<Path>, meta: SnapshotMeta) -> Result<Self, SnapshotError> {
        if meta.shards == 0 {
            return Err(SnapshotError::corrupt("snapshot must have at least one shard"));
        }
        if meta.dim == 0 {
            return Err(SnapshotError::corrupt("snapshot dim must be nonzero"));
        }
        let dir = dir.as_ref().to_path_buf();
        fs::create_dir_all(&dir)
            .map_err(|e| SnapshotError::io(format!("create dir {}", dir.display()), e))?;
        let mut shards = Vec::with_capacity(meta.shards as usize);
        for s in 0..meta.shards {
            let path = dir.join(shard_name(s));
            let file = fs::File::create(&path)
                .map_err(|e| SnapshotError::io(format!("create {}", path.display()), e))?;
            let mut out = std::io::BufWriter::new(file);
            let mut header = ByteWriter::new();
            header.bytes(&SHARD_MAGIC);
            header.u32(FORMAT_VERSION);
            header.u32(s);
            header.u64(0); // snapshot_id placeholder, patched in finish()
            out.write_all(header.as_slice())
                .map_err(|e| SnapshotError::io(format!("write {} header", path.display()), e))?;
            shards.push(ShardOut {
                file: out,
                offset: SHARD_HEADER_LEN,
                user_checksum: Fnv64::new(),
                group_checksum: Fnv64::new(),
                user_section: None,
            });
        }
        Ok(Self {
            dir,
            meta,
            shards,
            next_user: 0,
            next_group: 0,
            presence: vec![0u8; meta.num_users.div_ceil(8)],
            group_index: Vec::with_capacity(meta.num_groups),
            row_buf: Vec::new(),
            zero_row: vec![0u8; meta.quant.row_bytes(meta.dim)],
        })
    }

    /// Appends the next user's latent (`None` for an absent latent —
    /// the row slot is zero-filled and the presence bit stays clear, so
    /// row addressing remains pure arithmetic). Users must be pushed in
    /// id order, exactly `num_users` times.
    pub fn push_user(&mut self, latent: Option<&[f32]>) -> Result<(), SnapshotError> {
        if self.next_user >= self.meta.num_users {
            return Err(SnapshotError::corrupt(format!(
                "push_user beyond declared num_users = {}",
                self.meta.num_users
            )));
        }
        if self.next_group > 0 || self.shards.iter().any(|s| s.user_section.is_some()) {
            return Err(SnapshotError::corrupt("push_user after push_group"));
        }
        let user = self.next_user;
        let shard_idx = user % self.meta.shards as usize;
        let bytes: &[u8] = match latent {
            Some(row) => {
                if row.len() != self.meta.dim {
                    return Err(SnapshotError::corrupt(format!(
                        "user {user} latent has {} values, snapshot dim is {}",
                        row.len(),
                        self.meta.dim
                    )));
                }
                self.row_buf.clear();
                self.meta.quant.encode_row(row, &mut self.row_buf);
                if let Some(byte) = self.presence.get_mut(user / 8) {
                    *byte |= 1 << (user % 8);
                }
                &self.row_buf
            }
            None => &self.zero_row,
        };
        let shard = self
            .shards
            .get_mut(shard_idx)
            .ok_or(SnapshotError::corrupt("shard index out of range"))?;
        shard
            .file
            .write_all(bytes)
            .map_err(|e| SnapshotError::io(format!("write user {user} row"), e))?;
        shard.user_checksum.update(bytes);
        shard.offset += bytes.len() as u64;
        self.next_user += 1;
        Ok(())
    }

    /// Appends the next group's `l×d` member representations. Groups
    /// must be pushed in id order, exactly `num_groups` times, after
    /// every user.
    pub fn push_group(&mut self, reps: &Matrix) -> Result<(), SnapshotError> {
        if self.next_group >= self.meta.num_groups {
            return Err(SnapshotError::corrupt(format!(
                "push_group beyond declared num_groups = {}",
                self.meta.num_groups
            )));
        }
        if self.next_user != self.meta.num_users {
            return Err(SnapshotError::corrupt(format!(
                "push_group before all users written ({} of {})",
                self.next_user, self.meta.num_users
            )));
        }
        self.seal_user_sections();
        if reps.rows() > 0 && reps.cols() != self.meta.dim {
            return Err(SnapshotError::corrupt(format!(
                "group {} reps have {} columns, snapshot dim is {}",
                self.next_group,
                reps.cols(),
                self.meta.dim
            )));
        }
        let group = self.next_group;
        let shard_idx = group % self.meta.shards as usize;
        self.row_buf.clear();
        for row in reps.rows_iter().take(reps.rows()) {
            self.meta.quant.encode_row(row, &mut self.row_buf);
        }
        let shard = self
            .shards
            .get_mut(shard_idx)
            .ok_or(SnapshotError::corrupt("shard index out of range"))?;
        self.group_index.push((shard.offset, reps.rows() as u32));
        shard
            .file
            .write_all(&self.row_buf)
            .map_err(|e| SnapshotError::io(format!("write group {group} reps"), e))?;
        shard.group_checksum.update(&self.row_buf);
        shard.offset += self.row_buf.len() as u64;
        self.next_group += 1;
        Ok(())
    }

    /// Marks the user slab of every shard finished (called on the first
    /// group push, or by `finish` for group-less snapshots).
    fn seal_user_sections(&mut self) {
        for shard in &mut self.shards {
            if shard.user_section.is_none() {
                shard.user_section = Some((SHARD_HEADER_LEN, shard.offset - SHARD_HEADER_LEN));
            }
        }
    }

    /// Flushes the shards, patches their headers with the
    /// content-derived snapshot id, and writes the manifest. Returns
    /// the snapshot id.
    pub fn finish(mut self) -> Result<u64, SnapshotError> {
        if self.next_user != self.meta.num_users {
            return Err(SnapshotError::corrupt(format!(
                "finish with {} of {} users written",
                self.next_user, self.meta.num_users
            )));
        }
        if self.next_group != self.meta.num_groups {
            return Err(SnapshotError::corrupt(format!(
                "finish with {} of {} groups written",
                self.next_group, self.meta.num_groups
            )));
        }
        self.seal_user_sections();

        // Section table: USER_LATENTS then GROUP_REPS per shard, in
        // shard order.
        let mut sections: Vec<(u32, u32, u64, u64, u64)> = Vec::new();
        for (s, shard) in self.shards.iter().enumerate() {
            let (uoff, ulen) = shard.user_section.unwrap_or((SHARD_HEADER_LEN, 0));
            sections.push((section::USER_LATENTS, s as u32, uoff, ulen, shard.user_checksum.finish()));
            let goff = uoff + ulen;
            let glen = shard.offset - goff;
            sections.push((section::GROUP_REPS, s as u32, goff, glen, shard.group_checksum.finish()));
        }

        let snapshot_id = compute_snapshot_id(&self.meta, &sections);

        // Flush and patch each shard header's snapshot_id in place.
        for (s, shard) in self.shards.drain(..).enumerate() {
            let mut file = shard
                .file
                .into_inner()
                .map_err(|e| SnapshotError::io(format!("flush shard {s}"), e.into_error()))?;
            file.seek(SeekFrom::Start(16))
                .map_err(|e| SnapshotError::io(format!("seek shard {s} header"), e))?;
            file.write_all(&snapshot_id.to_le_bytes())
                .map_err(|e| SnapshotError::io(format!("patch shard {s} header"), e))?;
            file.sync_all()
                .map_err(|e| SnapshotError::io(format!("sync shard {s}"), e))?;
        }

        // Manifest: meta, section table, presence bitmap, group index,
        // trailing checksum over everything before it.
        let mut w = ByteWriter::new();
        w.bytes(&MANIFEST_MAGIC);
        w.u32(FORMAT_VERSION);
        w.u32(self.meta.quant.tag() as u32);
        w.u64(self.meta.num_users as u64);
        w.u64(self.meta.num_items as u64);
        w.u64(self.meta.num_groups as u64);
        w.u32(self.meta.dim as u32);
        w.u32(self.meta.shards);
        w.u64(snapshot_id);
        w.u32(sections.len() as u32);
        for &(tag, shard, offset, len, checksum) in &sections {
            w.u32(tag);
            w.u32(shard);
            w.u64(offset);
            w.u64(len);
            w.u64(checksum);
        }
        w.u64(self.presence.len() as u64);
        w.bytes(&self.presence);
        for &(offset, rows) in &self.group_index {
            w.u64(offset);
            w.u32(rows);
        }
        let checksum = crate::format::fnv64(w.as_slice());
        w.u64(checksum);

        let tmp = self.dir.join(format!("{MANIFEST_NAME}.tmp"));
        let final_path = self.dir.join(MANIFEST_NAME);
        fs::write(&tmp, w.as_slice())
            .map_err(|e| SnapshotError::io(format!("write {}", tmp.display()), e))?;
        fs::rename(&tmp, &final_path)
            .map_err(|e| SnapshotError::io(format!("rename manifest into place"), e))?;
        Ok(snapshot_id)
    }
}

/// The content-derived snapshot id: FNV-1a over the meta fields and
/// every section's identity + checksum. Identical content ⇒ identical
/// id; any slab or meta change ⇒ a new id, which is how shard files
/// are tied to their manifest.
pub(crate) fn compute_snapshot_id(meta: &SnapshotMeta, sections: &[(u32, u32, u64, u64, u64)]) -> u64 {
    let mut w = ByteWriter::new();
    w.u32(FORMAT_VERSION);
    w.u32(meta.quant.tag() as u32);
    w.u64(meta.num_users as u64);
    w.u64(meta.num_items as u64);
    w.u64(meta.num_groups as u64);
    w.u32(meta.dim as u32);
    w.u32(meta.shards);
    for &(tag, shard, offset, len, checksum) in sections {
        w.u32(tag);
        w.u32(shard);
        w.u64(offset);
        w.u64(len);
        w.u64(checksum);
    }
    crate::format::fnv64(w.as_slice())
}
