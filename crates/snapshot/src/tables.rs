//! The table accessor abstraction the serving layer reads through.
//!
//! `FrozenModel` keeps two caches: one `h_j` latent per user and one
//! `l×d` post-voting member-representation matrix per group. Behind
//! [`TableStore`] those caches can live fully in memory (the freeze
//! path — [`MemoryTables`]) or page in lazily from a sharded binary
//! snapshot (`crate::reader::SnapshotTables`). [`TableRef`] keeps the
//! in-memory path zero-copy: a borrowed ref costs nothing, while a
//! lazily-decoded row comes back owned — both deref to [`Matrix`].

use crate::error::SnapshotError;
use groupsa_tensor::Matrix;
use std::ops::Deref;

/// A table row set that is either borrowed from a resident cache or
/// freshly decoded from disk.
pub enum TableRef<'a> {
    /// A zero-copy view into a resident table.
    Borrowed(&'a Matrix),
    /// A row set decoded on demand (lazy snapshot reads).
    Owned(Matrix),
}

impl Deref for TableRef<'_> {
    type Target = Matrix;

    fn deref(&self) -> &Matrix {
        match self {
            Self::Borrowed(m) => m,
            Self::Owned(m) => m,
        }
    }
}

/// Read access to the frozen per-user / per-group tables.
///
/// Implementations must be `Send + Sync` — worker threads share one
/// store through an `Arc` with no locking on the read path.
pub trait TableStore: Send + Sync {
    /// Number of user rows (ids `0..num_users`).
    fn num_users(&self) -> usize;

    /// Number of group entries (ids `0..num_groups`).
    fn num_groups(&self) -> usize;

    /// Latent dimensionality `d` (columns of every row).
    fn dim(&self) -> usize;

    /// The `1×d` enhanced latent `h_j` for `user`, `None` when the
    /// user has no cached latent (ablated or cold user).
    fn user_latent(&self, user: usize) -> Result<Option<TableRef<'_>>, SnapshotError>;

    /// The `l×d` post-voting member representations for `group`.
    fn group_rep(&self, group: usize) -> Result<TableRef<'_>, SnapshotError>;

    /// Bytes of table data resident in memory right now. A fully
    /// materialized store reports its whole payload; a lazy store
    /// reports only its index structures.
    fn resident_bytes(&self) -> usize;

    /// Short label for reports: `"memory"` or `"snapshot"`.
    fn backing(&self) -> &'static str;
}

/// Fully materialized tables — the freeze/rebuild path. Reads are
/// zero-copy borrows; this is the bit-identical baseline the snapshot
/// readers are validated against.
pub struct MemoryTables {
    user_latents: Vec<Option<Matrix>>,
    group_reps: Vec<Matrix>,
    dim: usize,
}

impl MemoryTables {
    /// Wraps precomputed caches. `dim` must match every row (callers
    /// pass the model's embedding dimension; rows are produced by the
    /// same model, so this holds by construction).
    pub fn new(user_latents: Vec<Option<Matrix>>, group_reps: Vec<Matrix>, dim: usize) -> Self {
        Self { user_latents, group_reps, dim }
    }

    /// Iterates user latents in id order (the snapshot writer's input).
    pub fn user_latents(&self) -> &[Option<Matrix>] {
        &self.user_latents
    }

    /// Iterates group reps in id order (the snapshot writer's input).
    pub fn group_reps(&self) -> &[Matrix] {
        &self.group_reps
    }
}

impl TableStore for MemoryTables {
    fn num_users(&self) -> usize {
        self.user_latents.len()
    }

    fn num_groups(&self) -> usize {
        self.group_reps.len()
    }

    fn dim(&self) -> usize {
        self.dim
    }

    fn user_latent(&self, user: usize) -> Result<Option<TableRef<'_>>, SnapshotError> {
        match self.user_latents.get(user) {
            Some(slot) => Ok(slot.as_ref().map(TableRef::Borrowed)),
            None => Err(SnapshotError::OutOfRange {
                entity: "user",
                id: user,
                len: self.user_latents.len(),
            }),
        }
    }

    fn group_rep(&self, group: usize) -> Result<TableRef<'_>, SnapshotError> {
        match self.group_reps.get(group) {
            Some(m) => Ok(TableRef::Borrowed(m)),
            None => Err(SnapshotError::OutOfRange {
                entity: "group",
                id: group,
                len: self.group_reps.len(),
            }),
        }
    }

    fn resident_bytes(&self) -> usize {
        let user_bytes: usize = self
            .user_latents
            .iter()
            .flatten()
            .map(|m| m.as_slice().len() * 4)
            .sum();
        let group_bytes: usize = self.group_reps.iter().map(|m| m.as_slice().len() * 4).sum();
        user_bytes + group_bytes
    }

    fn backing(&self) -> &'static str {
        "memory"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store() -> MemoryTables {
        MemoryTables::new(
            vec![Some(Matrix::from_vec(1, 2, vec![1.0, 2.0])), None],
            vec![Matrix::from_vec(2, 2, vec![0.5, 0.25, -1.0, 4.0])],
            2,
        )
    }

    #[test]
    fn memory_reads_are_borrowed_and_bit_exact() {
        let s = store();
        let latent = s.user_latent(0).expect("in range").expect("present");
        assert!(matches!(latent, TableRef::Borrowed(_)));
        assert_eq!(latent.as_slice(), &[1.0, 2.0]);
        assert!(s.user_latent(1).expect("in range").is_none());
        let rep = s.group_rep(0).expect("in range");
        assert_eq!(rep.shape(), (2, 2));
    }

    #[test]
    fn out_of_range_is_a_typed_error() {
        let s = store();
        assert!(matches!(s.user_latent(2), Err(SnapshotError::OutOfRange { entity: "user", .. })));
        assert!(matches!(s.group_rep(1), Err(SnapshotError::OutOfRange { entity: "group", .. })));
    }

    #[test]
    fn resident_bytes_counts_full_payload() {
        let s = store();
        // 2 latent f32 + 4 group f32 = 24 bytes.
        assert_eq!(s.resident_bytes(), 24);
        assert_eq!(s.backing(), "memory");
    }
}
