//! `groupsa-snapshot`: versioned binary frozen-model snapshots.
//!
//! The serving path used to reload a `FrozenModel` by deserializing a
//! JSON checkpoint and materializing every table in RAM. This crate
//! replaces that with an on-disk format built for million-user
//! serving:
//!
//! * **Binary + versioned** — magic bytes, a versioned header, and a
//!   checksummed manifest (DESIGN §13). Corrupt or foreign files are
//!   rejected with typed [`SnapshotError`]s, never panics: the whole
//!   crate sits inside the `groupsa-lint` panic-safety scope.
//! * **Sharded** — the user-latent and group-rep tables are split
//!   across N shard files by id modulo, so row addresses are pure
//!   arithmetic and a snapshot bigger than one worker's cache still
//!   serves.
//! * **Lazy** — [`Snapshot::open`] validates headers and sizes but
//!   reads no table bytes; each access pages in exactly one entity's
//!   rows. Full-slab checksums are the opt-in [`Snapshot::verify`].
//! * **Quantized (optional)** — rows may be stored as f32 (bit-exact
//!   with the in-memory tables), f16, or i8 with a per-row scale
//!   ([`Quant`]), trading 2–4× memory/disk for measured NDCG/HR loss.
//!
//! Serving code reads through the [`TableStore`] trait, which the
//! in-memory [`MemoryTables`] (zero-copy borrows) and the lazy
//! [`SnapshotTables`] both implement — `FrozenModel` does not know or
//! care where its rows live.

#![warn(missing_docs)]

mod error;
mod format;
mod reader;
mod tables;
mod writer;

pub use error::SnapshotError;
pub use format::{f16_bits_to_f32, f32_to_f16_bits, fnv64, Quant, FORMAT_VERSION};
pub use reader::{Snapshot, SnapshotTables};
pub use tables::{MemoryTables, TableRef, TableStore};
pub use writer::{shard_name, SnapshotMeta, SnapshotWriter, MANIFEST_NAME};
