//! Typed snapshot errors.
//!
//! Every failure mode of the on-disk format is a distinct variant so
//! the serving layer can answer a request with a typed error instead
//! of panicking — the whole crate is inside the `groupsa-lint`
//! panic-safety scope, and a corrupt file must never take a worker
//! down.

use std::fmt;
use std::io;

/// Everything that can go wrong opening, verifying, or reading a
/// snapshot.
#[derive(Debug)]
pub enum SnapshotError {
    /// An underlying I/O failure (file missing, short read, …).
    Io {
        /// What the crate was doing when the OS said no.
        context: String,
        /// The OS error text.
        source: String,
    },
    /// The file does not start with the expected magic bytes — it is
    /// not a snapshot (or not this kind of snapshot file).
    BadMagic {
        /// Which file kind was expected (`manifest` or `shard`).
        what: &'static str,
    },
    /// The format version is one this build does not understand.
    UnsupportedVersion {
        /// The version found in the header.
        found: u32,
    },
    /// A file ends before a section the header promised.
    Truncated {
        /// Which section or structure is cut short.
        what: String,
    },
    /// Stored and recomputed checksums disagree — bit rot or a
    /// partial/overwritten file.
    ChecksumMismatch {
        /// Which section failed.
        section: String,
    },
    /// A shard file named by the manifest is missing or belongs to a
    /// different snapshot (mismatched `snapshot_id`).
    ShardMismatch {
        /// Shard index.
        index: u32,
        /// What disagreed.
        reason: String,
    },
    /// Structurally invalid header contents (impossible offsets,
    /// overlapping sections, zero dimensions, …).
    Corrupt {
        /// Human-readable description.
        detail: String,
    },
    /// An entity id outside the snapshot's universe was requested.
    OutOfRange {
        /// `user` or `group`.
        entity: &'static str,
        /// The requested id.
        id: usize,
        /// The table size.
        len: usize,
    },
}

impl SnapshotError {
    /// Wraps an [`io::Error`] with a description of the operation.
    pub fn io(context: impl Into<String>, err: io::Error) -> Self {
        Self::Io { context: context.into(), source: err.to_string() }
    }

    /// Shorthand for a [`SnapshotError::Corrupt`].
    pub fn corrupt(detail: impl Into<String>) -> Self {
        Self::Corrupt { detail: detail.into() }
    }
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Io { context, source } => write!(f, "snapshot io: {context}: {source}"),
            Self::BadMagic { what } => write!(f, "snapshot {what}: bad magic (not a snapshot file)"),
            Self::UnsupportedVersion { found } => {
                write!(f, "snapshot: unsupported format version {found}")
            }
            Self::Truncated { what } => write!(f, "snapshot: truncated {what}"),
            Self::ChecksumMismatch { section } => {
                write!(f, "snapshot: checksum mismatch in {section}")
            }
            Self::ShardMismatch { index, reason } => {
                write!(f, "snapshot: shard {index}: {reason}")
            }
            Self::Corrupt { detail } => write!(f, "snapshot: corrupt: {detail}"),
            Self::OutOfRange { entity, id, len } => {
                write!(f, "snapshot: {entity} {id} out of range (table has {len})")
            }
        }
    }
}

impl std::error::Error for SnapshotError {}
