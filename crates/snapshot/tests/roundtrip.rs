//! Write → read round-trip properties: bit-exactness of the f32 path,
//! shard-count invariance, quantization determinism and error bounds,
//! and byte-stability of the written files across processes (the PR 5
//! re-exec pattern — fresh address space, fresh hash seeds).

mod common;

use common::*;
use groupsa_snapshot::{Quant, Snapshot, SnapshotTables, TableStore};
use std::process::Command;

#[test]
fn f32_roundtrip_is_bit_exact() {
    let dir = fresh_dir("rt-f32");
    write_fixture(&dir, 3, Quant::F32);
    let snap = Snapshot::open(&dir).expect("open");
    assert_eq!(snap.meta().num_users, NUM_USERS);
    assert_eq!(snap.meta().num_items, NUM_ITEMS);
    assert_eq!(snap.meta().num_groups, NUM_GROUPS);
    assert_eq!(snap.meta().dim, DIM);

    for (u, want) in user_latents().iter().enumerate() {
        let got = snap.user_latent(u).expect("read user");
        match (want, got) {
            (None, None) => {}
            (Some(w), Some(g)) => {
                let wb: Vec<u32> = w.as_slice().iter().map(|v| v.to_bits()).collect();
                let gb: Vec<u32> = g.as_slice().iter().map(|v| v.to_bits()).collect();
                assert_eq!(wb, gb, "user {u} latent bits");
            }
            (w, g) => panic!("user {u}: presence mismatch (want {:?}, got {:?})", w.is_some(), g.is_some()),
        }
    }
    for (g, want) in group_reps().iter().enumerate() {
        let got = snap.group_rep(g).expect("read group");
        assert_eq!(got.shape(), want.shape(), "group {g} shape");
        let wb: Vec<u32> = want.as_slice().iter().map(|v| v.to_bits()).collect();
        let gb: Vec<u32> = got.as_slice().iter().map(|v| v.to_bits()).collect();
        assert_eq!(wb, gb, "group {g} rep bits");
    }
    snap.verify().expect("checksums hold");
}

#[test]
fn reads_are_invariant_to_shard_count() {
    let dirs: Vec<_> = [1u32, 2, 7, 32]
        .into_iter()
        .map(|s| {
            let dir = fresh_dir(&format!("rt-shards-{s}"));
            write_fixture(&dir, s, Quant::F32);
            Snapshot::open(&dir).expect("open")
        })
        .collect();
    for u in 0..NUM_USERS {
        let base = dirs[0].user_latent(u).expect("read").map(|m| m.as_slice().to_vec());
        for snap in &dirs[1..] {
            let got = snap.user_latent(u).expect("read").map(|m| m.as_slice().to_vec());
            assert_eq!(base, got, "user {u} differs across shard counts");
        }
    }
    for g in 0..NUM_GROUPS {
        let base = dirs[0].group_rep(g).expect("read").as_slice().to_vec();
        for snap in &dirs[1..] {
            assert_eq!(base, snap.group_rep(g).expect("read").as_slice().to_vec(), "group {g}");
        }
    }
}

#[test]
fn more_shards_than_entities_still_serves() {
    let dir = fresh_dir("rt-wide");
    write_fixture(&dir, 64, Quant::F32);
    let snap = Snapshot::open(&dir).expect("open");
    snap.verify().expect("verify");
    for u in 0..NUM_USERS {
        snap.user_latent(u).expect("read");
    }
}

#[test]
fn quantized_reads_are_deterministic_and_bounded() {
    for quant in [Quant::F16, Quant::I8] {
        let dir = fresh_dir(&format!("rt-{}", quant.name()));
        write_fixture(&dir, 3, quant);
        let snap = Snapshot::open(&dir).expect("open");
        let reopened = Snapshot::open(&dir).expect("reopen");
        for (u, want) in user_latents().iter().enumerate() {
            let a = snap.user_latent(u).expect("read");
            let b = snap.user_latent(u).expect("read again");
            let c = reopened.user_latent(u).expect("read via second handle");
            let bits = |m: &Option<groupsa_tensor::Matrix>| {
                m.as_ref().map(|m| m.as_slice().iter().map(|v| v.to_bits()).collect::<Vec<_>>())
            };
            assert_eq!(bits(&a), bits(&b), "{} user {u} re-read differs", quant.name());
            assert_eq!(bits(&a), bits(&c), "{} user {u} handle differs", quant.name());
            if let (Some(w), Some(g)) = (want, &a) {
                let max_abs = w.as_slice().iter().fold(0.0f32, |m, v| m.max(v.abs()));
                let tol = match quant {
                    // f16 has 11 significand bits: relative error ≤ 2⁻¹¹
                    // of the value, so ≤ max_abs · 2⁻¹¹ absolutely.
                    Quant::F16 => max_abs * (1.0 / 2048.0),
                    // i8 quantum is max_abs/127; rounding error ≤ q/2,
                    // plus scale's own f32 rounding — use one quantum.
                    Quant::I8 => max_abs / 127.0,
                    Quant::F32 => 0.0,
                };
                for (x, y) in w.as_slice().iter().zip(g.as_slice()) {
                    assert!((x - y).abs() <= tol, "{} user {u}: {x} vs {y} (tol {tol})", quant.name());
                }
            }
        }
        snap.verify().expect("verify quantized");
    }
}

#[test]
fn quantized_tables_shrink_on_disk() {
    let sizes: Vec<u64> = [Quant::F32, Quant::F16, Quant::I8]
        .into_iter()
        .map(|q| {
            let dir = fresh_dir(&format!("rt-size-{}", q.name()));
            write_fixture(&dir, 2, q);
            std::fs::read_dir(&dir)
                .expect("list")
                .map(|e| e.expect("entry").metadata().expect("meta").len())
                .sum()
        })
        .collect();
    assert!(sizes[1] < sizes[0], "f16 ({}) not smaller than f32 ({})", sizes[1], sizes[0]);
    assert!(sizes[2] < sizes[1], "i8 ({}) not smaller than f16 ({})", sizes[2], sizes[1]);
}

#[test]
fn lazy_open_keeps_residency_at_the_index_floor() {
    use groupsa_snapshot::{SnapshotMeta, SnapshotWriter};
    // Large enough that the per-user cost (1 presence bit) is visibly
    // below the table payload (dim f32 per user): 4096 users → 512 B
    // of bitmap vs 128 KiB of rows.
    let users = 4096;
    let dir = fresh_dir("rt-resident");
    let meta = SnapshotMeta { num_users: users, num_items: 10, num_groups: 0, dim: DIM, shards: 4, quant: Quant::F32 };
    let mut w = SnapshotWriter::create(&dir, meta).expect("create");
    for u in 0..users {
        let row: Vec<f32> = (0..DIM).map(|k| value(3, u, k)).collect();
        w.push_user(Some(&row)).expect("push user");
    }
    w.finish().expect("finish");
    let tables = SnapshotTables::new(Snapshot::open(&dir).expect("open"));
    let full_table_bytes = users * DIM * 4;
    assert!(
        tables.resident_bytes() < full_table_bytes / 64,
        "lazy store resident {} bytes vs {} of table payload",
        tables.resident_bytes(),
        full_table_bytes
    );
    assert_eq!(tables.backing(), "snapshot");
}

#[test]
fn writer_enforces_declared_universe_and_order() {
    use groupsa_snapshot::{SnapshotError, SnapshotMeta, SnapshotWriter};
    let meta = SnapshotMeta { num_users: 2, num_items: 1, num_groups: 1, dim: 2, shards: 1, quant: Quant::F32 };

    // Groups before all users.
    let dir = fresh_dir("rt-order");
    let mut w = SnapshotWriter::create(&dir, meta).expect("create");
    w.push_user(Some(&[1.0, 2.0])).expect("user 0");
    let reps = groupsa_tensor::Matrix::from_vec(1, 2, vec![0.5, 0.5]);
    assert!(matches!(w.push_group(&reps), Err(SnapshotError::Corrupt { .. })));

    // Finish with missing entities.
    let dir = fresh_dir("rt-short");
    let w = SnapshotWriter::create(&dir, meta).expect("create");
    assert!(matches!(w.finish(), Err(SnapshotError::Corrupt { .. })));

    // Wrong latent width.
    let dir = fresh_dir("rt-width");
    let mut w = SnapshotWriter::create(&dir, meta).expect("create");
    assert!(matches!(w.push_user(Some(&[1.0])), Err(SnapshotError::Corrupt { .. })));

    // Zero shards rejected up front.
    let bad = SnapshotMeta { shards: 0, ..meta };
    assert!(matches!(
        SnapshotWriter::create(fresh_dir("rt-zero"), bad),
        Err(SnapshotError::Corrupt { .. })
    ));
}

// ---------------------------------------------------------------------
// Cross-process byte-stability (PR 5 re-exec pattern).

const CHILD_ENV: &str = "GROUPSA_SNAPSHOT_DIGEST_CHILD";

fn fnv1a(bytes: &[u8], mut h: u64) -> u64 {
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Digest of every file in a freshly-written snapshot, in name order.
fn written_digest(tag: &str) -> u64 {
    let dir = fresh_dir(tag);
    write_fixture(&dir, 3, Quant::F32);
    let mut names: Vec<_> = std::fs::read_dir(&dir)
        .expect("list snapshot dir")
        .map(|e| e.expect("entry").file_name())
        .collect();
    names.sort();
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for name in names {
        h = fnv1a(name.to_string_lossy().as_bytes(), h);
        h = fnv1a(&std::fs::read(dir.join(&name)).expect("read file"), h);
    }
    h
}

/// Child half: re-exec'd with [`CHILD_ENV`] set, writes a snapshot in
/// a fresh address space and prints its file digest.
#[test]
fn child_emits_snapshot_digest() {
    if std::env::var(CHILD_ENV).is_err() {
        return;
    }
    println!("DIGEST={:016x}", written_digest("xproc-child"));
}

fn digest_from_child() -> u64 {
    let exe = std::env::current_exe().expect("test binary path");
    let out = Command::new(exe)
        .args(["--exact", "child_emits_snapshot_digest", "--nocapture"])
        .env(CHILD_ENV, "1")
        .output()
        .expect("re-exec the test binary");
    assert!(out.status.success(), "child failed: {}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    let idx = stdout
        .find("DIGEST=")
        .unwrap_or_else(|| panic!("no DIGEST marker in child output:\n{stdout}"));
    let hex = &stdout[idx + "DIGEST=".len()..idx + "DIGEST=".len() + 16];
    u64::from_str_radix(hex, 16).expect("hex digest")
}

#[test]
fn snapshot_bytes_are_identical_across_process_runs() {
    let local = written_digest("xproc-parent");
    let first = digest_from_child();
    let second = digest_from_child();
    assert_eq!(first, second, "two process runs wrote different snapshot bytes");
    assert_eq!(first, local, "child snapshot bytes differ from the parent's");
}
