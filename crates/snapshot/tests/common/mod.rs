//! Shared fixtures for the snapshot integration tests: a small
//! deterministic table set and a writer helper.

use groupsa_snapshot::{Quant, SnapshotMeta, SnapshotWriter};
use groupsa_tensor::Matrix;
use std::path::PathBuf;

pub const NUM_USERS: usize = 23;
pub const NUM_ITEMS: usize = 17;
pub const NUM_GROUPS: usize = 6;
pub const DIM: usize = 8;

/// A unique scratch directory per test; removed and recreated so
/// reruns start clean.
pub fn fresh_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("groupsa-snapshot-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Deterministic pseudo-table value: varied sign/magnitude, no RNG so
/// every process computes identical bits.
pub fn value(seed: usize, row: usize, col: usize) -> f32 {
    let x = (seed.wrapping_mul(31) + row.wrapping_mul(131) + col.wrapping_mul(7)) % 29;
    (x as f32) * 0.173 - 2.4
}

/// User latents: every 5th user is `None` (cold / ablated).
pub fn user_latents() -> Vec<Option<Matrix>> {
    (0..NUM_USERS)
        .map(|u| {
            if u % 5 == 4 {
                None
            } else {
                Some(Matrix::from_vec(1, DIM, (0..DIM).map(|k| value(1, u, k)).collect()))
            }
        })
        .collect()
}

/// Group reps with varying member counts, including an empty group.
pub fn group_reps() -> Vec<Matrix> {
    (0..NUM_GROUPS)
        .map(|g| {
            let rows = g % 4; // group 0 and 4 are empty
            let data = (0..rows * DIM).map(|i| value(2, g, i)).collect();
            Matrix::from_vec(rows, DIM, data)
        })
        .collect()
}

/// Writes the fixture tables as a snapshot; returns the snapshot id.
pub fn write_fixture(dir: &std::path::Path, shards: u32, quant: Quant) -> u64 {
    let meta = SnapshotMeta {
        num_users: NUM_USERS,
        num_items: NUM_ITEMS,
        num_groups: NUM_GROUPS,
        dim: DIM,
        shards,
        quant,
    };
    let mut w = SnapshotWriter::create(dir, meta).expect("create writer");
    for latent in user_latents() {
        w.push_user(latent.as_ref().map(|m| m.as_slice())).expect("push user");
    }
    for reps in group_reps() {
        w.push_group(&reps).expect("push group");
    }
    w.finish().expect("finish snapshot")
}
