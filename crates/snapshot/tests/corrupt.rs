//! Corrupt-snapshot rejection: every damage mode maps to a *typed*
//! [`SnapshotError`] — the serve path must degrade to an error
//! response, never panic. Damage that the lazy open intentionally does
//! not scan for (slab bit rot) is caught by the opt-in `verify()`.

mod common;

use common::*;
use groupsa_snapshot::{Quant, Snapshot, SnapshotError, MANIFEST_NAME};
use std::path::Path;

fn written(tag: &str) -> std::path::PathBuf {
    let dir = fresh_dir(tag);
    write_fixture(&dir, 2, Quant::F32);
    dir
}

/// Patches `file` at `offset` with `bytes`.
fn patch(file: &Path, offset: u64, bytes: &[u8]) {
    let mut data = std::fs::read(file).expect("read");
    data[offset as usize..offset as usize + bytes.len()].copy_from_slice(bytes);
    std::fs::write(file, data).expect("write");
}

/// Rewrites the manifest body at `offset` and fixes up the trailing
/// checksum, so the damage under test is reached instead of the
/// checksum guard.
fn patch_manifest_rechecksum(dir: &Path, offset: usize, bytes: &[u8]) {
    let path = dir.join(MANIFEST_NAME);
    let mut data = std::fs::read(&path).expect("read manifest");
    let body_len = data.len() - 8;
    data[offset..offset + bytes.len()].copy_from_slice(bytes);
    let sum = groupsa_snapshot::fnv64(&data[..body_len]);
    data[body_len..].copy_from_slice(&sum.to_le_bytes());
    std::fs::write(&path, data).expect("write manifest");
}

#[test]
fn manifest_bad_magic_is_rejected() {
    let dir = written("bad-magic");
    patch_manifest_rechecksum(&dir, 0, b"NOTSNAP\0");
    assert!(matches!(Snapshot::open(&dir), Err(SnapshotError::BadMagic { what: "manifest" })));
}

#[test]
fn manifest_future_version_is_rejected() {
    let dir = written("bad-version");
    // version field sits right after the 8-byte magic
    patch_manifest_rechecksum(&dir, 8, &99u32.to_le_bytes());
    assert!(matches!(
        Snapshot::open(&dir),
        Err(SnapshotError::UnsupportedVersion { found: 99 })
    ));
}

#[test]
fn manifest_bit_flip_fails_the_trailing_checksum() {
    let dir = written("bit-flip");
    let path = dir.join(MANIFEST_NAME);
    let data = std::fs::read(&path).expect("read");
    // Flip one bit in the middle of the body (presence bitmap area).
    let mid = data.len() / 2;
    patch(&path, mid as u64, &[data[mid] ^ 0x10]);
    assert!(matches!(
        Snapshot::open(&dir),
        Err(SnapshotError::ChecksumMismatch { section }) if section == "manifest"
    ));
}

#[test]
fn truncated_manifest_is_rejected() {
    let dir = written("trunc-manifest");
    let path = dir.join(MANIFEST_NAME);
    let data = std::fs::read(&path).expect("read");
    std::fs::write(&path, &data[..data.len() / 2]).expect("truncate");
    // Cutting the body invalidates the trailing checksum (or leaves
    // too few bytes) — either way a typed error, never a panic.
    assert!(matches!(
        Snapshot::open(&dir),
        Err(SnapshotError::ChecksumMismatch { .. } | SnapshotError::Truncated { .. })
    ));
}

#[test]
fn truncated_shard_slab_is_caught_at_open() {
    let dir = written("trunc-shard");
    let shard = dir.join(groupsa_snapshot::shard_name(1));
    let data = std::fs::read(&shard).expect("read shard");
    std::fs::write(&shard, &data[..data.len() - 7]).expect("truncate shard");
    assert!(matches!(Snapshot::open(&dir), Err(SnapshotError::Truncated { .. })));
}

#[test]
fn shard_bad_magic_is_rejected() {
    let dir = written("shard-magic");
    patch(&dir.join(groupsa_snapshot::shard_name(0)), 0, b"XXXXXXXX");
    assert!(matches!(Snapshot::open(&dir), Err(SnapshotError::BadMagic { what: "shard" })));
}

#[test]
fn shard_version_mismatch_is_rejected() {
    let dir = written("shard-version");
    patch(&dir.join(groupsa_snapshot::shard_name(0)), 8, &7u32.to_le_bytes());
    assert!(matches!(
        Snapshot::open(&dir),
        Err(SnapshotError::UnsupportedVersion { found: 7 })
    ));
}

#[test]
fn swapped_shard_files_are_rejected() {
    let dir = written("shard-swap");
    // Shard 1 claims index 1 in its header; rename it over shard 0.
    std::fs::copy(dir.join(groupsa_snapshot::shard_name(1)), dir.join(groupsa_snapshot::shard_name(0)))
        .expect("copy shard");
    assert!(matches!(Snapshot::open(&dir), Err(SnapshotError::ShardMismatch { index: 0, .. })));
}

#[test]
fn shard_from_another_snapshot_is_rejected() {
    let dir_a = written("foreign-a");
    // Same universe, different content → different snapshot id.
    let dir_b = fresh_dir("foreign-b");
    {
        use groupsa_snapshot::{SnapshotMeta, SnapshotWriter};
        let meta = SnapshotMeta {
            num_users: NUM_USERS,
            num_items: NUM_ITEMS,
            num_groups: NUM_GROUPS,
            dim: DIM,
            shards: 2,
            quant: Quant::F32,
        };
        let mut w = SnapshotWriter::create(&dir_b, meta).expect("create");
        for u in 0..NUM_USERS {
            let row: Vec<f32> = (0..DIM).map(|k| value(9, u, k)).collect();
            w.push_user(Some(&row)).expect("push user");
        }
        for reps in group_reps() {
            w.push_group(&reps).expect("push group");
        }
        w.finish().expect("finish");
    }
    std::fs::copy(dir_b.join(groupsa_snapshot::shard_name(0)), dir_a.join(groupsa_snapshot::shard_name(0)))
        .expect("transplant shard");
    assert!(matches!(Snapshot::open(&dir_a), Err(SnapshotError::ShardMismatch { .. })));
}

#[test]
fn missing_files_are_io_errors() {
    let dir = written("missing-shard");
    std::fs::remove_file(dir.join(groupsa_snapshot::shard_name(1))).expect("remove");
    assert!(matches!(Snapshot::open(&dir), Err(SnapshotError::Io { .. })));

    let dir = fresh_dir("missing-manifest");
    std::fs::create_dir_all(&dir).expect("mkdir");
    assert!(matches!(Snapshot::open(&dir), Err(SnapshotError::Io { .. })));
}

#[test]
fn slab_bit_rot_passes_lazy_open_but_fails_verify() {
    let dir = written("slab-rot");
    let shard = dir.join(groupsa_snapshot::shard_name(0));
    let len = std::fs::metadata(&shard).expect("stat").len();
    // Flip a bit well inside the slab (past the 24-byte header).
    patch(&shard, len - 3, &[0xFF]);
    let snap = Snapshot::open(&dir).expect("lazy open does not scan slabs");
    assert!(matches!(snap.verify(), Err(SnapshotError::ChecksumMismatch { .. })));
}

#[test]
fn out_of_range_reads_are_typed() {
    let dir = written("oob");
    let snap = Snapshot::open(&dir).expect("open");
    assert!(matches!(
        snap.user_latent(NUM_USERS),
        Err(SnapshotError::OutOfRange { entity: "user", .. })
    ));
    assert!(matches!(
        snap.group_rep(NUM_GROUPS),
        Err(SnapshotError::OutOfRange { entity: "group", .. })
    ));
}

#[test]
fn errors_render_useful_messages() {
    let dir = written("display");
    patch_manifest_rechecksum(&dir, 8, &42u32.to_le_bytes());
    let err = Snapshot::open(&dir).expect_err("must fail");
    let msg = err.to_string();
    assert!(msg.contains("42"), "message should name the version: {msg}");
}
