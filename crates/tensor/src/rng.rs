//! Seeded random initialisation helpers.
//!
//! The paper initialises embedding layers with Glorot (Xavier) and hidden
//! layers with a Gaussian of mean 0 / std 0.1 (§III-E). Both are provided
//! here on top of any [`rand::Rng`], so that every experiment in the
//! workspace is reproducible from a single `u64` seed.
//!
//! Gaussian samples use the Box–Muller transform rather than pulling in
//! `rand_distr` (see DESIGN.md §6).

use crate::Matrix;
use rand::{Rng, RngExt};
use rand::SeedableRng;

/// The deterministic RNG used across the workspace.
pub type StdRng = rand::rngs::StdRng;

/// Creates the workspace-standard RNG from a seed.
pub fn seeded(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// One round of the SplitMix64 finalizer: a full-avalanche mixing of a
/// 64-bit word (Steele, Lea & Flood 2014). Used to derive independent
/// RNG streams from structured keys.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// An independent RNG stream derived from a `(seed, stream, index)`
/// key, e.g. `(training seed, epoch, example index)`.
///
/// Each key component passes through a SplitMix64 avalanche before the
/// next is folded in, so nearby keys (consecutive example indices,
/// consecutive epochs) land in unrelated regions of the seed space.
/// This is what makes data-parallel training deterministic: the stream
/// for example `i` of epoch `e` depends only on the key, never on how
/// many draws other examples made or on which thread runs it.
pub fn stream_rng(seed: u64, stream: u64, index: u64) -> StdRng {
    seeded(splitmix64(splitmix64(splitmix64(seed) ^ stream) ^ index))
}

/// One standard-normal sample via the Box–Muller transform.
pub fn standard_normal(rng: &mut impl Rng) -> f32 {
    // u1 ∈ (0, 1] so ln(u1) is finite.
    let u1: f32 = 1.0 - rng.random::<f32>();
    let u2: f32 = rng.random::<f32>();
    (-2.0 * u1.ln()).sqrt() * (std::f32::consts::TAU * u2).cos()
}

/// One `N(mean, std²)` sample.
pub fn gaussian(rng: &mut impl Rng, mean: f32, std: f32) -> f32 {
    mean + std * standard_normal(rng)
}

/// A matrix of independent `N(mean, std²)` samples.
pub fn gaussian_matrix(rng: &mut impl Rng, rows: usize, cols: usize, mean: f32, std: f32) -> Matrix {
    Matrix::from_fn(rows, cols, |_, _| gaussian(rng, mean, std))
}

/// A matrix drawn from the Glorot (Xavier) uniform distribution
/// `U(−√(6/(fan_in+fan_out)), +√(6/(fan_in+fan_out)))`, where `fan_in =
/// rows` and `fan_out = cols` — the paper's embedding initialiser.
pub fn glorot_uniform(rng: &mut impl Rng, rows: usize, cols: usize) -> Matrix {
    let limit = (6.0 / (rows + cols) as f32).sqrt();
    Matrix::from_fn(rows, cols, |_, _| rng.random_range(-limit..limit))
}

/// A matrix of `U(low, high)` samples.
pub fn uniform_matrix(rng: &mut impl Rng, rows: usize, cols: usize, low: f32, high: f32) -> Matrix {
    Matrix::from_fn(rows, cols, |_, _| rng.random_range(low..high))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_is_deterministic() {
        let a = gaussian_matrix(&mut seeded(42), 4, 4, 0.0, 1.0);
        let b = gaussian_matrix(&mut seeded(42), 4, 4, 0.0, 1.0);
        assert_eq!(a, b);
        let c = gaussian_matrix(&mut seeded(43), 4, 4, 0.0, 1.0);
        assert_ne!(a, c);
    }

    #[test]
    fn stream_rng_is_deterministic_and_key_sensitive() {
        use rand::RngExt;
        let draw = |seed, stream, index| {
            let mut rng = stream_rng(seed, stream, index);
            (0..4).map(|_| rng.random::<u64>()).collect::<Vec<_>>()
        };
        assert_eq!(draw(1, 2, 3), draw(1, 2, 3));
        assert_ne!(draw(1, 2, 3), draw(1, 2, 4));
        assert_ne!(draw(1, 2, 3), draw(1, 3, 3));
        assert_ne!(draw(1, 2, 3), draw(2, 2, 3));
        // The key components must not be interchangeable: swapping
        // stream and index gives a different stream.
        assert_ne!(draw(1, 2, 3), draw(1, 3, 2));
    }

    #[test]
    fn gaussian_moments() {
        let mut rng = seeded(7);
        let n = 20_000;
        let samples: Vec<f32> = (0..n).map(|_| gaussian(&mut rng, 2.0, 0.5)).collect();
        let mean = samples.iter().sum::<f32>() / n as f32;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f32>() / n as f32;
        assert!((mean - 2.0).abs() < 0.02, "mean={mean}");
        assert!((var - 0.25).abs() < 0.02, "var={var}");
    }

    #[test]
    fn standard_normal_is_finite() {
        let mut rng = seeded(99);
        for _ in 0..10_000 {
            assert!(standard_normal(&mut rng).is_finite());
        }
    }

    #[test]
    fn glorot_respects_limit() {
        let mut rng = seeded(3);
        let m = glorot_uniform(&mut rng, 100, 50, );
        let limit = (6.0 / 150.0_f32).sqrt();
        assert!(m.as_slice().iter().all(|&x| x.abs() <= limit));
        // Spread should roughly fill the interval.
        assert!(m.max() > 0.8 * limit);
        assert!(m.min() < -0.8 * limit);
    }

    #[test]
    fn uniform_matrix_in_range() {
        let mut rng = seeded(11);
        let m = uniform_matrix(&mut rng, 10, 10, -2.0, 3.0);
        assert!(m.as_slice().iter().all(|&x| (-2.0..3.0).contains(&x)));
    }
}
