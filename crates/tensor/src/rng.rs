//! Seeded random initialisation helpers.
//!
//! The paper initialises embedding layers with Glorot (Xavier) and hidden
//! layers with a Gaussian of mean 0 / std 0.1 (§III-E). Both are provided
//! here on top of any [`rand::Rng`], so that every experiment in the
//! workspace is reproducible from a single `u64` seed.
//!
//! Gaussian samples use the Box–Muller transform rather than pulling in
//! `rand_distr` (see DESIGN.md §6).

use crate::Matrix;
use rand::{Rng, RngExt};
use rand::SeedableRng;

/// The deterministic RNG used across the workspace.
pub type StdRng = rand::rngs::StdRng;

/// Creates the workspace-standard RNG from a seed.
pub fn seeded(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// One standard-normal sample via the Box–Muller transform.
pub fn standard_normal(rng: &mut impl Rng) -> f32 {
    // u1 ∈ (0, 1] so ln(u1) is finite.
    let u1: f32 = 1.0 - rng.random::<f32>();
    let u2: f32 = rng.random::<f32>();
    (-2.0 * u1.ln()).sqrt() * (std::f32::consts::TAU * u2).cos()
}

/// One `N(mean, std²)` sample.
pub fn gaussian(rng: &mut impl Rng, mean: f32, std: f32) -> f32 {
    mean + std * standard_normal(rng)
}

/// A matrix of independent `N(mean, std²)` samples.
pub fn gaussian_matrix(rng: &mut impl Rng, rows: usize, cols: usize, mean: f32, std: f32) -> Matrix {
    Matrix::from_fn(rows, cols, |_, _| gaussian(rng, mean, std))
}

/// A matrix drawn from the Glorot (Xavier) uniform distribution
/// `U(−√(6/(fan_in+fan_out)), +√(6/(fan_in+fan_out)))`, where `fan_in =
/// rows` and `fan_out = cols` — the paper's embedding initialiser.
pub fn glorot_uniform(rng: &mut impl Rng, rows: usize, cols: usize) -> Matrix {
    let limit = (6.0 / (rows + cols) as f32).sqrt();
    Matrix::from_fn(rows, cols, |_, _| rng.random_range(-limit..limit))
}

/// A matrix of `U(low, high)` samples.
pub fn uniform_matrix(rng: &mut impl Rng, rows: usize, cols: usize, low: f32, high: f32) -> Matrix {
    Matrix::from_fn(rows, cols, |_, _| rng.random_range(low..high))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_is_deterministic() {
        let a = gaussian_matrix(&mut seeded(42), 4, 4, 0.0, 1.0);
        let b = gaussian_matrix(&mut seeded(42), 4, 4, 0.0, 1.0);
        assert_eq!(a, b);
        let c = gaussian_matrix(&mut seeded(43), 4, 4, 0.0, 1.0);
        assert_ne!(a, c);
    }

    #[test]
    fn gaussian_moments() {
        let mut rng = seeded(7);
        let n = 20_000;
        let samples: Vec<f32> = (0..n).map(|_| gaussian(&mut rng, 2.0, 0.5)).collect();
        let mean = samples.iter().sum::<f32>() / n as f32;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f32>() / n as f32;
        assert!((mean - 2.0).abs() < 0.02, "mean={mean}");
        assert!((var - 0.25).abs() < 0.02, "var={var}");
    }

    #[test]
    fn standard_normal_is_finite() {
        let mut rng = seeded(99);
        for _ in 0..10_000 {
            assert!(standard_normal(&mut rng).is_finite());
        }
    }

    #[test]
    fn glorot_respects_limit() {
        let mut rng = seeded(3);
        let m = glorot_uniform(&mut rng, 100, 50, );
        let limit = (6.0 / 150.0_f32).sqrt();
        assert!(m.as_slice().iter().all(|&x| x.abs() <= limit));
        // Spread should roughly fill the interval.
        assert!(m.max() > 0.8 * limit);
        assert!(m.min() < -0.8 * limit);
    }

    #[test]
    fn uniform_matrix_in_range() {
        let mut rng = seeded(11);
        let m = uniform_matrix(&mut rng, 10, 10, -2.0, 3.0);
        assert!(m.as_slice().iter().all(|&x| (-2.0..3.0).contains(&x)));
    }
}
