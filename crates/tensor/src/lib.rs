//! # groupsa-tensor
//!
//! Dense 2-D tensor math and tape-based reverse-mode automatic
//! differentiation — the numeric substrate on which the GroupSA model
//! ([ICDE 2020](https://doi.org/10.1109/ICDE48307.2020)) and all baselines
//! in this workspace are built.
//!
//! The paper trained its model with PyTorch; nothing comparable is assumed
//! here, so this crate supplies the minimal-but-complete slice of a deep
//! learning framework the model actually needs:
//!
//! * [`Matrix`] — a row-major `f32` matrix with the usual linear-algebra
//!   and element-wise operations (`matmul`, `transpose`, broadcasting row
//!   adds, concatenation, slicing, gathering, …).
//! * [`Graph`] — a computation tape. Operations push nodes; calling
//!   [`Graph::backward`] on a scalar node yields exact reverse-mode
//!   gradients for every node, including *parameter bindings* so model
//!   code can scatter gradients back into embedding tables without ever
//!   copying whole tables onto the tape.
//! * [`ops`] — numerically stable free functions (softmax, softplus,
//!   sigmoid, log-sum-exp) shared by forward code and by inference paths
//!   that do not need gradients.
//! * [`rng`] — seeded initialisation helpers (Glorot uniform, Gaussian via
//!   Box–Muller) so every experiment in the workspace is reproducible from
//!   a `u64` seed.
//! * [`check`] — finite-difference gradient checking used throughout the
//!   test suites of this crate and `groupsa-nn`.
//!
//! ## Design notes
//!
//! Everything is 2-D. The GroupSA computation graph (self-attention over a
//! group's members, attention over a user's interacted items, MLP scorers)
//! decomposes naturally into small dense 2-D products, so a full N-d
//! tensor type would add complexity without buying anything. Batching over
//! candidate items is expressed with ordinary matrix rows; batching over
//! groups is expressed by building one small tape per group (tapes are
//! arena-allocated `Vec`s — building one costs a handful of allocations).
//!
//! Shape mismatches are *programming errors*, not recoverable conditions,
//! and therefore panic with a descriptive message (the same stance taken
//! by `ndarray`). All panicking preconditions are documented on each
//! method.
//!
//! ## Example
//!
//! ```
//! use groupsa_tensor::{Graph, Matrix};
//!
//! // f(W) = sum(relu(x·W)) ; df/dW by reverse mode.
//! let x = Matrix::from_vec(1, 3, vec![1.0, -2.0, 0.5]);
//! let w = Matrix::from_vec(3, 2, vec![0.1, 0.2, 0.3, 0.4, 0.5, 0.6]);
//!
//! let mut g = Graph::new();
//! let xs = g.leaf(x);
//! let ws = g.param_full(0, &w);
//! let y = g.matmul(xs, ws);
//! let y = g.relu(y);
//! let loss = g.sum_all(y);
//! let grads = g.backward(loss);
//! assert_eq!(grads.get(ws).unwrap().shape(), (3, 2));
//! ```

#![warn(missing_docs)]

mod matrix;
pub mod check;
mod graph;
pub mod ops;
pub mod rng;

pub use graph::{Binding, Grads, Graph, NodeId};
pub use matrix::Matrix;
