//! Tape-based reverse-mode automatic differentiation.
//!
//! A [`Graph`] is an arena of nodes. Every operation evaluates its result
//! eagerly (forward pass) and records which parents produced it; calling
//! [`Graph::backward`] on a scalar node walks the tape once in reverse,
//! producing exact gradients for every node.
//!
//! Model parameters live *outside* the tape (see `groupsa-nn`'s parameter
//! store). They enter a graph either wholesale ([`Graph::param_full`]) or —
//! crucial for embedding tables — as a gathered subset of rows
//! ([`Graph::param_rows`]), whose gradient is scatter-added back into the
//! table by the trainer. This is what makes per-example SGD over
//! thousands-of-rows embedding matrices cheap.

use crate::ops;
use crate::Matrix;

/// Handle to a node in a [`Graph`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct NodeId(u32);

impl NodeId {
    #[inline]
    fn idx(self) -> usize {
        self.0 as usize
    }
}

/// How a leaf node is connected to an external parameter.
#[derive(Clone, Debug)]
pub enum Binding {
    /// The node holds a full copy of parameter `slot`.
    Full {
        /// Parameter-store slot the gradient should be accumulated into.
        slot: usize,
    },
    /// The node holds `indices`-gathered rows of parameter `slot`
    /// (an embedding lookup). Its gradient must be scatter-added into
    /// the table rows given by `indices` (repeats accumulate).
    Rows {
        /// Parameter-store slot of the embedding table.
        slot: usize,
        /// The looked-up row indices, in node-row order.
        indices: Vec<usize>,
    },
}

enum Op {
    Leaf,
    MatMul(NodeId, NodeId),
    Transpose(NodeId),
    Add(NodeId, NodeId),
    Sub(NodeId, NodeId),
    MulElem(NodeId, NodeId),
    Scale(NodeId, f32),
    /// Adds a non-differentiable constant (e.g. the social bias mask).
    AddConst(NodeId),
    /// Multiplies by a non-differentiable constant (e.g. a dropout mask).
    MulConst(NodeId, Matrix),
    AddRowBroadcast(NodeId, NodeId),
    Relu(NodeId),
    Sigmoid(NodeId),
    Tanh(NodeId),
    Softplus(NodeId),
    SoftmaxRows(NodeId),
    ConcatCols(NodeId, NodeId),
    ConcatRows(NodeId, NodeId),
    SliceRows(NodeId, usize),
    RepeatRows(NodeId),
    MeanRows(NodeId),
    SumAll(NodeId),
    MeanAll(NodeId),
    LayerNorm {
        x: NodeId,
        gamma: NodeId,
        beta: NodeId,
        /// Normalised activations `(x - μ)·rstd`, cached for backward.
        xhat: Matrix,
        /// Per-row reciprocal standard deviation, cached for backward.
        rstd: Vec<f32>,
    },
}

struct Node {
    value: Matrix,
    op: Op,
}

/// Gradients produced by [`Graph::backward`].
///
/// Nodes the loss does not depend on have no gradient entry.
pub struct Grads {
    grads: Vec<Option<Matrix>>,
}

impl Grads {
    /// The gradient of the loss with respect to `id`, if the loss
    /// depends on that node.
    pub fn get(&self, id: NodeId) -> Option<&Matrix> {
        self.grads[id.idx()].as_ref()
    }
}

/// A reverse-mode autodiff tape. See the module-level docs for the
/// design (arena of eagerly-evaluated nodes, parameter bindings for
/// gradient scatter).
#[derive(Default)]
pub struct Graph {
    nodes: Vec<Node>,
    bindings: Vec<(NodeId, Binding)>,
}

impl Graph {
    /// Creates an empty tape.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of nodes recorded so far.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// `true` when no nodes have been recorded.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The forward value of `id`.
    pub fn value(&self, id: NodeId) -> &Matrix {
        &self.nodes[id.idx()].value
    }

    /// Leaf nodes bound to external parameters, for gradient scatter.
    pub fn bindings(&self) -> &[(NodeId, Binding)] {
        &self.bindings
    }

    fn push(&mut self, value: Matrix, op: Op) -> NodeId {
        let id = NodeId(u32::try_from(self.nodes.len()).expect("graph node count overflow"));
        self.nodes.push(Node { value, op });
        id
    }

    /// Records a constant/input leaf (not differentiated back to anything
    /// outside the graph, but it still *receives* a gradient entry).
    pub fn leaf(&mut self, value: Matrix) -> NodeId {
        self.push(value, Op::Leaf)
    }

    /// Records a leaf holding a full copy of a parameter and binds it to
    /// `slot` so the trainer can accumulate its gradient.
    pub fn param_full(&mut self, slot: usize, value: &Matrix) -> NodeId {
        let id = self.push(value.clone(), Op::Leaf);
        self.bindings.push((id, Binding::Full { slot }));
        id
    }

    /// Records an embedding lookup: gathers `indices` rows of `table`
    /// into a leaf bound to `slot` (gradient is scatter-added back).
    ///
    /// # Panics
    /// If any index is out of bounds for `table`.
    pub fn param_rows(&mut self, slot: usize, table: &Matrix, indices: &[usize]) -> NodeId {
        let id = self.push(table.gather_rows(indices), Op::Leaf);
        self.bindings.push((id, Binding::Rows { slot, indices: indices.to_vec() }));
        id
    }

    /// Matrix product `a · b`.
    pub fn matmul(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let v = self.value(a).matmul(self.value(b));
        self.push(v, Op::MatMul(a, b))
    }

    /// Transpose.
    pub fn transpose(&mut self, a: NodeId) -> NodeId {
        let v = self.value(a).transpose();
        self.push(v, Op::Transpose(a))
    }

    /// Element-wise sum of two same-shape nodes.
    pub fn add(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let v = self.value(a).add(self.value(b));
        self.push(v, Op::Add(a, b))
    }

    /// Element-wise difference `a − b`.
    pub fn sub(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let v = self.value(a).sub(self.value(b));
        self.push(v, Op::Sub(a, b))
    }

    /// Element-wise (Hadamard) product.
    pub fn mul_elem(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let v = self.value(a).mul_elem(self.value(b));
        self.push(v, Op::MulElem(a, b))
    }

    /// Scalar multiple `s · a`.
    pub fn scale(&mut self, a: NodeId, s: f32) -> NodeId {
        let v = self.value(a).scale(s);
        self.push(v, Op::Scale(a, s))
    }

    /// Adds a non-differentiable constant matrix (used for the social
    /// bias mask of paper Eq. (4): entries may be `-inf`).
    ///
    /// # Panics
    /// If shapes differ.
    pub fn add_const(&mut self, a: NodeId, c: &Matrix) -> NodeId {
        let v = self.value(a).zip_map(c, |x, y| x + y);
        self.push(v, Op::AddConst(a))
    }

    /// Multiplies element-wise by a non-differentiable constant matrix
    /// (used for dropout masks, which are pre-scaled by `1/keep_prob`).
    ///
    /// # Panics
    /// If shapes differ.
    pub fn mul_const(&mut self, a: NodeId, c: &Matrix) -> NodeId {
        let v = self.value(a).mul_elem(c);
        self.push(v, Op::MulConst(a, c.clone()))
    }

    /// Adds a `1×c` bias row to every row of `a`.
    pub fn add_row_broadcast(&mut self, a: NodeId, bias: NodeId) -> NodeId {
        let v = self.value(a).add_row_broadcast(self.value(bias));
        self.push(v, Op::AddRowBroadcast(a, bias))
    }

    /// Rectified linear unit.
    pub fn relu(&mut self, a: NodeId) -> NodeId {
        let v = self.value(a).map(ops::relu);
        self.push(v, Op::Relu(a))
    }

    /// Logistic sigmoid.
    pub fn sigmoid(&mut self, a: NodeId) -> NodeId {
        let v = self.value(a).map(ops::sigmoid);
        self.push(v, Op::Sigmoid(a))
    }

    /// Hyperbolic tangent.
    pub fn tanh(&mut self, a: NodeId) -> NodeId {
        let v = self.value(a).map(f32::tanh);
        self.push(v, Op::Tanh(a))
    }

    /// Stable softplus `ln(1 + e^x)` — the building block of the BPR loss
    /// `-ln σ(x) = softplus(-x)`.
    pub fn softplus(&mut self, a: NodeId) -> NodeId {
        let v = self.value(a).map(ops::softplus);
        self.push(v, Op::Softplus(a))
    }

    /// Row-wise stable softmax (masked entries of `-inf` become 0).
    pub fn softmax_rows(&mut self, a: NodeId) -> NodeId {
        let v = ops::softmax_rows(self.value(a));
        self.push(v, Op::SoftmaxRows(a))
    }

    /// Horizontal concatenation `[a | b]`.
    pub fn concat_cols(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let v = self.value(a).concat_cols(self.value(b));
        self.push(v, Op::ConcatCols(a, b))
    }

    /// Vertical concatenation (`a` on top of `b`).
    pub fn concat_rows(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let v = self.value(a).concat_rows(self.value(b));
        self.push(v, Op::ConcatRows(a, b))
    }

    /// Copies rows `start..start+len` of `a`.
    pub fn slice_rows(&mut self, a: NodeId, start: usize, len: usize) -> NodeId {
        let v = self.value(a).slice_rows(start, len);
        self.push(v, Op::SliceRows(a, start))
    }

    /// Tiles a `1×c` row `times` times.
    pub fn repeat_rows(&mut self, a: NodeId, times: usize) -> NodeId {
        let v = self.value(a).repeat_rows(times);
        self.push(v, Op::RepeatRows(a))
    }

    /// Column-wise mean, producing a `1×c` row.
    pub fn mean_rows(&mut self, a: NodeId) -> NodeId {
        let v = self.value(a).mean_rows();
        self.push(v, Op::MeanRows(a))
    }

    /// Sum of all elements as a `1×1` node.
    pub fn sum_all(&mut self, a: NodeId) -> NodeId {
        let v = Matrix::full(1, 1, self.value(a).sum());
        self.push(v, Op::SumAll(a))
    }

    /// Mean of all elements as a `1×1` node.
    pub fn mean_all(&mut self, a: NodeId) -> NodeId {
        let v = Matrix::full(1, 1, self.value(a).mean());
        self.push(v, Op::MeanAll(a))
    }

    /// Row-wise layer normalisation with affine parameters
    /// (`gamma`, `beta` are `1×c` nodes), as used after every attention
    /// and FFN sub-layer (paper §II-C, "LayerNorm(x + Sublayer(x))").
    pub fn layer_norm(&mut self, x: NodeId, gamma: NodeId, beta: NodeId, eps: f32) -> NodeId {
        let xv = self.value(x);
        let n = xv.cols() as f32;
        let mut xhat = xv.clone();
        let mut rstd = Vec::with_capacity(xv.rows());
        for r in 0..xhat.rows() {
            let row = xhat.row_mut(r);
            let mean = row.iter().sum::<f32>() / n;
            let var = row.iter().map(|&v| (v - mean) * (v - mean)).sum::<f32>() / n;
            let rs = 1.0 / (var + eps).sqrt();
            row.iter_mut().for_each(|v| *v = (*v - mean) * rs);
            rstd.push(rs);
        }
        let g = self.value(gamma);
        let b = self.value(beta);
        assert_eq!(g.shape(), (1, xv.cols()), "layer_norm: gamma must be 1x{}", xv.cols());
        assert_eq!(b.shape(), (1, xv.cols()), "layer_norm: beta must be 1x{}", xv.cols());
        let mut out = xhat.clone();
        for r in 0..out.rows() {
            for ((v, &gg), &bb) in out.row_mut(r).iter_mut().zip(g.as_slice()).zip(b.as_slice()) {
                *v = *v * gg + bb;
            }
        }
        self.push(out, Op::LayerNorm { x, gamma, beta, xhat, rstd })
    }

    /// Convenience: fully-connected affine layer `a·w + bias`.
    pub fn linear(&mut self, a: NodeId, w: NodeId, bias: NodeId) -> NodeId {
        let mm = self.matmul(a, w);
        self.add_row_broadcast(mm, bias)
    }

    /// Runs reverse-mode differentiation from the scalar node `root`.
    ///
    /// # Panics
    /// If `root` is not `1×1`.
    pub fn backward(&self, root: NodeId) -> Grads {
        assert_eq!(
            self.value(root).shape(),
            (1, 1),
            "backward: root must be scalar (1x1), got {:?}",
            self.value(root).shape()
        );
        let mut grads: Vec<Option<Matrix>> = vec![None; self.nodes.len()];
        grads[root.idx()] = Some(Matrix::full(1, 1, 1.0));

        for idx in (0..self.nodes.len()).rev() {
            let Some(dy) = grads[idx].take() else { continue };
            self.accumulate_parents(idx, &dy, &mut grads);
            grads[idx] = Some(dy);
        }
        Grads { grads }
    }

    fn accumulate_parents(&self, idx: usize, dy: &Matrix, grads: &mut [Option<Matrix>]) {
        let node = &self.nodes[idx];
        let mut acc = |id: NodeId, g: Matrix| {
            match &mut grads[id.idx()] {
                Some(existing) => existing.add_assign(&g),
                slot @ None => *slot = Some(g),
            }
        };
        match &node.op {
            Op::Leaf => {}
            Op::MatMul(a, b) => {
                let da = dy.matmul_transpose_b(self.value(*b));
                let db = self.value(*a).transpose().matmul(dy);
                acc(*a, da);
                acc(*b, db);
            }
            Op::Transpose(a) => acc(*a, dy.transpose()),
            Op::Add(a, b) => {
                acc(*a, dy.clone());
                acc(*b, dy.clone());
            }
            Op::Sub(a, b) => {
                acc(*a, dy.clone());
                acc(*b, dy.scale(-1.0));
            }
            Op::MulElem(a, b) => {
                acc(*a, dy.mul_elem(self.value(*b)));
                acc(*b, dy.mul_elem(self.value(*a)));
            }
            Op::Scale(a, s) => acc(*a, dy.scale(*s)),
            Op::AddConst(a) => acc(*a, dy.clone()),
            Op::MulConst(a, c) => acc(*a, dy.mul_elem(c)),
            Op::AddRowBroadcast(a, bias) => {
                acc(*a, dy.clone());
                acc(*bias, dy.sum_rows());
            }
            Op::Relu(a) => {
                acc(*a, dy.zip_map(self.value(*a), |g, x| if x > 0.0 { g } else { 0.0 }));
            }
            Op::Sigmoid(a) => {
                let y = &node.value;
                acc(*a, dy.zip_map(y, |g, s| g * s * (1.0 - s)));
            }
            Op::Tanh(a) => {
                let y = &node.value;
                acc(*a, dy.zip_map(y, |g, t| g * (1.0 - t * t)));
            }
            Op::Softplus(a) => {
                acc(*a, dy.zip_map(self.value(*a), |g, x| g * ops::sigmoid(x)));
            }
            Op::SoftmaxRows(a) => {
                // dX = y ⊙ (dY − ⟨dY, y⟩_row)
                let y = &node.value;
                let mut dx = dy.mul_elem(y);
                for r in 0..dx.rows() {
                    let s: f32 = dx.row(r).iter().sum();
                    let yr = y.row(r);
                    for (d, &yv) in dx.row_mut(r).iter_mut().zip(yr) {
                        // d currently holds dY⊙y; subtract y·s.
                        *d -= yv * s;
                    }
                }
                acc(*a, dx);
            }
            Op::ConcatCols(a, b) => {
                let ca = self.value(*a).cols();
                let cb = self.value(*b).cols();
                let mut da = Matrix::zeros(dy.rows(), ca);
                let mut db = Matrix::zeros(dy.rows(), cb);
                for r in 0..dy.rows() {
                    da.row_mut(r).copy_from_slice(&dy.row(r)[..ca]);
                    db.row_mut(r).copy_from_slice(&dy.row(r)[ca..]);
                }
                acc(*a, da);
                acc(*b, db);
            }
            Op::ConcatRows(a, b) => {
                let ra = self.value(*a).rows();
                let rb = self.value(*b).rows();
                acc(*a, dy.slice_rows(0, ra));
                acc(*b, dy.slice_rows(ra, rb));
            }
            Op::SliceRows(a, start) => {
                let pv = self.value(*a);
                let mut da = Matrix::zeros(pv.rows(), pv.cols());
                for r in 0..dy.rows() {
                    da.row_mut(start + r).copy_from_slice(dy.row(r));
                }
                acc(*a, da);
            }
            Op::RepeatRows(a) => acc(*a, dy.sum_rows()),
            Op::MeanRows(a) => {
                let rows = self.value(*a).rows();
                acc(*a, dy.scale(1.0 / rows as f32).repeat_rows(rows));
            }
            Op::SumAll(a) => {
                let pv = self.value(*a);
                acc(*a, Matrix::full(pv.rows(), pv.cols(), dy.scalar()));
            }
            Op::MeanAll(a) => {
                let pv = self.value(*a);
                let n = pv.len() as f32;
                acc(*a, Matrix::full(pv.rows(), pv.cols(), dy.scalar() / n));
            }
            Op::LayerNorm { x, gamma, beta, xhat, rstd } => {
                let g = self.value(*gamma);
                let cols = xhat.cols() as f32;
                let mut dgamma = Matrix::zeros(1, xhat.cols());
                let mut dbeta = Matrix::zeros(1, xhat.cols());
                let mut dx = Matrix::zeros(xhat.rows(), xhat.cols());
                for r in 0..xhat.rows() {
                    let xh = xhat.row(r);
                    let dyr = dy.row(r);
                    // dGamma, dBeta accumulate over rows.
                    for ((dg, (&d, &xv)), db) in dgamma
                        .as_mut_slice()
                        .iter_mut()
                        .zip(dyr.iter().zip(xh))
                        .zip(dbeta.as_mut_slice().iter_mut())
                    {
                        *dg += d * xv;
                        *db += d;
                    }
                    // dXhat = dY ⊙ gamma; then
                    // dX = rstd · (dXhat − mean(dXhat) − xhat · mean(dXhat ⊙ xhat))
                    let dxhat: Vec<f32> =
                        dyr.iter().zip(g.as_slice()).map(|(&d, &gg)| d * gg).collect();
                    let m1 = dxhat.iter().sum::<f32>() / cols;
                    let m2 = dxhat.iter().zip(xh).map(|(&d, &xv)| d * xv).sum::<f32>() / cols;
                    let rs = rstd[r];
                    for ((o, &d), &xv) in dx.row_mut(r).iter_mut().zip(&dxhat).zip(xh) {
                        *o = rs * (d - m1 - xv * m2);
                    }
                }
                acc(*x, dx);
                acc(*gamma, dgamma);
                acc(*beta, dbeta);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::check::assert_grad_matches;

    #[test]
    fn scalar_chain_rule() {
        // f(x) = sum(3 * sigmoid(x)) at a single element.
        let mut g = Graph::new();
        let x = g.leaf(Matrix::full(1, 1, 0.0));
        let s = g.sigmoid(x);
        let y = g.scale(s, 3.0);
        let loss = g.sum_all(y);
        assert!((g.value(loss).scalar() - 1.5).abs() < 1e-6);
        let grads = g.backward(loss);
        // d/dx 3σ(x) = 3 σ'(0) = 3·0.25.
        assert!((grads.get(x).unwrap().scalar() - 0.75).abs() < 1e-6);
    }

    #[test]
    fn matmul_grad_finite_diff() {
        let a0 = Matrix::from_fn(2, 3, |r, c| 0.3 * (r as f32) - 0.2 * (c as f32) + 0.1);
        let b0 = Matrix::from_fn(3, 2, |r, c| 0.1 * (r as f32 + 1.0) * (c as f32 - 0.5));
        assert_grad_matches(&a0, 1e-2, 2e-2, |m| {
            let mut g = Graph::new();
            let a = g.leaf(m.clone());
            let b = g.leaf(b0.clone());
            let y = g.matmul(a, b);
            let l = g.sum_all(y);
            (g.value(l).scalar(), g.backward(l).get(a).unwrap().clone())
        });
        assert_grad_matches(&b0, 1e-2, 2e-2, |m| {
            let mut g = Graph::new();
            let a = g.leaf(a0.clone());
            let b = g.leaf(m.clone());
            let y = g.matmul(a, b);
            let l = g.sum_all(y);
            (g.value(l).scalar(), g.backward(l).get(b).unwrap().clone())
        });
    }

    #[test]
    fn softmax_rows_grad_finite_diff() {
        let x0 = Matrix::from_fn(2, 4, |r, c| 0.37 * (c as f32) - 0.11 * (r as f32));
        assert_grad_matches(&x0, 1e-2, 2e-2, |m| {
            let mut g = Graph::new();
            let x = g.leaf(m.clone());
            let s = g.softmax_rows(x);
            // Weighted sum so the gradient is not identically zero.
            let w = g.leaf(Matrix::from_fn(2, 4, |r, c| ((r + 2 * c) as f32).sin()));
            let p = g.mul_elem(s, w);
            let l = g.sum_all(p);
            (g.value(l).scalar(), g.backward(l).get(x).unwrap().clone())
        });
    }

    #[test]
    fn masked_softmax_grad_is_zero_on_masked_entries() {
        let mut g = Graph::new();
        let x = g.leaf(Matrix::from_vec(1, 3, vec![0.2, -0.4, 0.9]));
        let mask = Matrix::from_vec(1, 3, vec![0.0, f32::NEG_INFINITY, 0.0]);
        let xm = g.add_const(x, &mask);
        let s = g.softmax_rows(xm);
        let w = g.leaf(Matrix::from_vec(1, 3, vec![1.0, 2.0, 3.0]));
        let p = g.mul_elem(s, w);
        let l = g.sum_all(p);
        let grads = g.backward(l);
        let dx = grads.get(x).unwrap();
        assert!(dx.is_finite(), "masked softmax must not produce NaN grads");
        assert_eq!(dx[(0, 1)], 0.0);
        assert!(dx[(0, 0)] != 0.0 && dx[(0, 2)] != 0.0);
    }

    #[test]
    fn layer_norm_grad_finite_diff() {
        let x0 = Matrix::from_fn(3, 5, |r, c| 0.5 * (r as f32) - 0.3 * (c as f32) + 0.2);
        let gamma0 = Matrix::from_fn(1, 5, |_, c| 1.0 + 0.1 * c as f32);
        let beta0 = Matrix::from_fn(1, 5, |_, c| 0.05 * c as f32);
        let weights = Matrix::from_fn(3, 5, |r, c| ((r * 3 + c) as f32).cos());
        let run = |x: &Matrix, gm: &Matrix, bt: &Matrix| {
            let mut g = Graph::new();
            let xs = g.leaf(x.clone());
            let gs = g.leaf(gm.clone());
            let bs = g.leaf(bt.clone());
            let y = g.layer_norm(xs, gs, bs, 1e-5);
            let w = g.leaf(weights.clone());
            let p = g.mul_elem(y, w);
            let l = g.sum_all(p);
            let grads = g.backward(l);
            (
                g.value(l).scalar(),
                grads.get(xs).unwrap().clone(),
                grads.get(gs).unwrap().clone(),
                grads.get(bs).unwrap().clone(),
            )
        };
        assert_grad_matches(&x0, 1e-2, 5e-2, |m| {
            let (l, dx, _, _) = run(m, &gamma0, &beta0);
            (l, dx)
        });
        assert_grad_matches(&gamma0, 1e-2, 5e-2, |m| {
            let (l, _, dg, _) = run(&x0, m, &beta0);
            (l, dg)
        });
        assert_grad_matches(&beta0, 1e-2, 5e-2, |m| {
            let (l, _, _, db) = run(&x0, &gamma0, m);
            (l, db)
        });
    }

    #[test]
    fn concat_slice_repeat_grads() {
        let a0 = Matrix::from_fn(2, 2, |r, c| (r + c) as f32 * 0.3);
        assert_grad_matches(&a0, 1e-2, 2e-2, |m| {
            let mut g = Graph::new();
            let a = g.leaf(m.clone());
            let b = g.leaf(Matrix::from_fn(2, 3, |r, c| (r * c) as f32 * 0.2 - 0.1));
            let cat = g.concat_cols(a, b); // 2×5
            let sl = g.slice_rows(cat, 0, 1); // 1×5
            let rep = g.repeat_rows(sl, 4); // 4×5
            let t = g.tanh(rep);
            let l = g.sum_all(t);
            (g.value(l).scalar(), g.backward(l).get(a).unwrap().clone())
        });
    }

    #[test]
    fn concat_rows_grad_splits() {
        let mut g = Graph::new();
        let a = g.leaf(Matrix::ones(2, 2));
        let b = g.leaf(Matrix::ones(1, 2));
        let cat = g.concat_rows(a, b);
        let s = g.scale(cat, 2.0);
        let l = g.sum_all(s);
        let grads = g.backward(l);
        assert_eq!(grads.get(a).unwrap().shape(), (2, 2));
        assert_eq!(grads.get(b).unwrap().shape(), (1, 2));
        assert!(grads.get(a).unwrap().as_slice().iter().all(|&x| x == 2.0));
    }

    #[test]
    fn relu_softplus_grads() {
        let x0 = Matrix::from_vec(1, 4, vec![-1.5, -0.1, 0.3, 2.0]);
        assert_grad_matches(&x0, 1e-3, 2e-2, |m| {
            let mut g = Graph::new();
            let x = g.leaf(m.clone());
            let r = g.relu(x);
            let s = g.softplus(r);
            let l = g.mean_all(s);
            (g.value(l).scalar(), g.backward(l).get(x).unwrap().clone())
        });
    }

    #[test]
    fn mean_rows_grad() {
        let x0 = Matrix::from_fn(3, 2, |r, c| (r * 2 + c) as f32 * 0.1);
        assert_grad_matches(&x0, 1e-2, 2e-2, |m| {
            let mut g = Graph::new();
            let x = g.leaf(m.clone());
            let mr = g.mean_rows(x);
            let sq = g.mul_elem(mr, mr);
            let l = g.sum_all(sq);
            (g.value(l).scalar(), g.backward(l).get(x).unwrap().clone())
        });
    }

    #[test]
    fn linear_layer_bias_grad_sums_rows() {
        let mut g = Graph::new();
        let x = g.leaf(Matrix::ones(3, 2));
        let w = g.leaf(Matrix::eye(2));
        let b = g.leaf(Matrix::zeros(1, 2));
        let y = g.linear(x, w, b);
        let l = g.sum_all(y);
        let grads = g.backward(l);
        // Each bias element receives one gradient per row.
        assert_eq!(grads.get(b).unwrap().as_slice(), &[3.0, 3.0]);
    }

    #[test]
    fn param_rows_gather_records_binding() {
        let table = Matrix::from_fn(5, 2, |r, c| (r * 2 + c) as f32);
        let mut g = Graph::new();
        let e = g.param_rows(7, &table, &[4, 1, 4]);
        assert_eq!(g.value(e).row(0), table.row(4));
        assert_eq!(g.value(e).row(1), table.row(1));
        let (id, binding) = &g.bindings()[0];
        assert_eq!(*id, e);
        match binding {
            Binding::Rows { slot, indices } => {
                assert_eq!(*slot, 7);
                assert_eq!(indices, &[4, 1, 4]);
            }
            other => panic!("expected Rows binding, got {other:?}"),
        }
    }

    #[test]
    fn diamond_dependency_accumulates() {
        // y = x·x (via two paths) — gradient must accumulate from both.
        let mut g = Graph::new();
        let x = g.leaf(Matrix::full(1, 1, 3.0));
        let y = g.mul_elem(x, x);
        let l = g.sum_all(y);
        let grads = g.backward(l);
        assert!((grads.get(x).unwrap().scalar() - 6.0).abs() < 1e-6);
    }

    #[test]
    fn unreached_nodes_have_no_grad() {
        let mut g = Graph::new();
        let x = g.leaf(Matrix::full(1, 1, 1.0));
        let orphan = g.leaf(Matrix::full(1, 1, 9.0));
        let l = g.sum_all(x);
        let grads = g.backward(l);
        assert!(grads.get(orphan).is_none());
        assert!(grads.get(x).is_some());
    }

    #[test]
    #[should_panic(expected = "root must be scalar")]
    fn backward_requires_scalar_root() {
        let mut g = Graph::new();
        let x = g.leaf(Matrix::ones(2, 2));
        let _ = g.backward(x);
    }

    #[test]
    fn dropout_mask_const_grad() {
        let mut g = Graph::new();
        let x = g.leaf(Matrix::ones(1, 4));
        let mask = Matrix::from_vec(1, 4, vec![0.0, 2.0, 0.0, 2.0]); // keep-prob 0.5, scaled
        let y = g.mul_const(x, &mask);
        let l = g.sum_all(y);
        let grads = g.backward(l);
        assert_eq!(grads.get(x).unwrap().as_slice(), mask.as_slice());
    }
}
