//! The dense row-major `f32` matrix used throughout the workspace.

use groupsa_json::impl_json_struct;
use std::fmt;
use std::ops::{Index, IndexMut};

/// A dense, row-major matrix of `f32`.
///
/// This is the single numeric container of the workspace: model
/// parameters, embeddings, activations, gradients, masks and metric
/// accumulators are all `Matrix` values. Vectors are represented as
/// `1×n` (row) or `n×1` (column) matrices; scalars as `1×1`.
///
/// All shape preconditions panic on violation — a mismatched shape is a
/// bug in the caller, never an input-dependent condition.
#[derive(Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl_json_struct!(Matrix { rows, cols, data });

impl Matrix {
    /// Creates a `rows × cols` matrix filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// Creates a `rows × cols` matrix filled with ones.
    pub fn ones(rows: usize, cols: usize) -> Self {
        Self::full(rows, cols, 1.0)
    }

    /// Creates a `rows × cols` matrix filled with `value`.
    pub fn full(rows: usize, cols: usize, value: f32) -> Self {
        Self { rows, cols, data: vec![value; rows * cols] }
    }

    /// Creates a matrix from a row-major data vector.
    ///
    /// # Panics
    /// If `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "Matrix::from_vec: data length {} does not match shape {rows}x{cols}",
            data.len()
        );
        Self { rows, cols, data }
    }

    /// Creates a matrix by evaluating `f(row, col)` for every element.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f32) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Self { rows, cols, data }
    }

    /// Creates a matrix whose rows are the given equal-length slices.
    ///
    /// # Panics
    /// If `rows` is empty or the rows have differing lengths.
    pub fn from_rows(rows: &[&[f32]]) -> Self {
        assert!(!rows.is_empty(), "Matrix::from_rows: no rows given");
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for (i, row) in rows.iter().enumerate() {
            assert_eq!(row.len(), cols, "Matrix::from_rows: row {i} has length {} != {cols}", row.len());
            data.extend_from_slice(row);
        }
        Self { rows: rows.len(), cols, data }
    }

    /// Creates a `1×n` row vector.
    pub fn row_vector(data: Vec<f32>) -> Self {
        let n = data.len();
        Self::from_vec(1, n, data)
    }

    /// Creates an `n×n` identity matrix.
    pub fn eye(n: usize) -> Self {
        Self::from_fn(n, n, |r, c| if r == c { 1.0 } else { 0.0 })
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)`.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Total number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// `true` when the matrix has zero elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Row-major backing slice.
    #[inline]
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable row-major backing slice.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the matrix, returning its row-major data.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Borrows row `r` as a slice.
    ///
    /// # Panics
    /// If `r >= rows`.
    #[inline]
    pub fn row(&self, r: usize) -> &[f32] {
        assert!(r < self.rows, "Matrix::row: row {r} out of bounds ({} rows)", self.rows);
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutably borrows row `r` as a slice.
    ///
    /// # Panics
    /// If `r >= rows`.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        assert!(r < self.rows, "Matrix::row_mut: row {r} out of bounds ({} rows)", self.rows);
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Iterates over the rows as slices.
    pub fn rows_iter(&self) -> impl Iterator<Item = &[f32]> {
        self.data.chunks_exact(self.cols.max(1))
    }

    /// The value of a `1×1` matrix.
    ///
    /// # Panics
    /// If the matrix is not `1×1`.
    pub fn scalar(&self) -> f32 {
        assert_eq!(self.shape(), (1, 1), "Matrix::scalar: shape is {}x{}", self.rows, self.cols);
        self.data[0]
    }

    /// Fills every element with `value`.
    pub fn fill(&mut self, value: f32) {
        self.data.iter_mut().for_each(|x| *x = value);
    }

    /// Returns a new matrix with `f` applied element-wise.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Self {
        Self {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&x| f(x)).collect(),
        }
    }

    /// Applies `f` element-wise in place.
    pub fn map_inplace(&mut self, f: impl Fn(f32) -> f32) {
        self.data.iter_mut().for_each(|x| *x = f(*x));
    }

    /// Returns a new matrix with `f(a, b)` applied to paired elements.
    ///
    /// # Panics
    /// If the shapes differ.
    pub fn zip_map(&self, other: &Self, f: impl Fn(f32, f32) -> f32) -> Self {
        self.assert_same_shape(other, "zip_map");
        Self {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().zip(&other.data).map(|(&a, &b)| f(a, b)).collect(),
        }
    }

    /// Element-wise sum.
    ///
    /// # Panics
    /// If the shapes differ.
    pub fn add(&self, other: &Self) -> Self {
        self.zip_map(other, |a, b| a + b)
    }

    /// Element-wise difference.
    ///
    /// # Panics
    /// If the shapes differ.
    pub fn sub(&self, other: &Self) -> Self {
        self.zip_map(other, |a, b| a - b)
    }

    /// Element-wise (Hadamard) product.
    ///
    /// # Panics
    /// If the shapes differ.
    pub fn mul_elem(&self, other: &Self) -> Self {
        self.zip_map(other, |a, b| a * b)
    }

    /// Multiplies every element by `s`.
    pub fn scale(&self, s: f32) -> Self {
        self.map(|x| x * s)
    }

    /// `self += other` element-wise.
    ///
    /// # Panics
    /// If the shapes differ.
    pub fn add_assign(&mut self, other: &Self) {
        self.assert_same_shape(other, "add_assign");
        for (a, &b) in self.data.iter_mut().zip(&other.data) {
            *a += b;
        }
    }

    /// `self += s * other` element-wise (AXPY).
    ///
    /// # Panics
    /// If the shapes differ.
    pub fn add_scaled_assign(&mut self, other: &Self, s: f32) {
        self.assert_same_shape(other, "add_scaled_assign");
        for (a, &b) in self.data.iter_mut().zip(&other.data) {
            *a += s * b;
        }
    }

    /// `self *= s` element-wise.
    pub fn scale_assign(&mut self, s: f32) {
        self.data.iter_mut().for_each(|x| *x *= s);
    }

    /// Adds the `1×cols` row vector `bias` to every row.
    ///
    /// # Panics
    /// If `bias` is not `1×cols`.
    pub fn add_row_broadcast(&self, bias: &Self) -> Self {
        assert_eq!(
            bias.shape(),
            (1, self.cols),
            "add_row_broadcast: bias shape {:?} incompatible with {}x{}",
            bias.shape(),
            self.rows,
            self.cols
        );
        let mut out = self.clone();
        for r in 0..out.rows {
            for (o, &b) in out.row_mut(r).iter_mut().zip(&bias.data) {
                *o += b;
            }
        }
        out
    }

    /// Standard matrix product `self · other`.
    ///
    /// Blocked i-k-j loop: each output row accumulates four rows of
    /// `other` per pass over it, which quarters the load/store traffic
    /// on the output row and lets the compiler vectorise the inner
    /// loop across columns. The accumulation *order per output
    /// element* is exactly the naive k-ascending order of
    /// [`Matrix::matmul_naive`], so results are bit-identical — the
    /// equivalence tests in `tests/kernel_equivalence.rs` pin this
    /// down across odd and prime shapes.
    ///
    /// # Panics
    /// If `self.cols != other.rows`.
    pub fn matmul(&self, other: &Self) -> Self {
        assert_eq!(
            self.cols, other.rows,
            "matmul: inner dimensions differ ({}x{} · {}x{})",
            self.rows, self.cols, other.rows, other.cols
        );
        let (m, k, n) = (self.rows, self.cols, other.cols);
        let mut out = Matrix::zeros(m, n);
        if n == 0 {
            return out;
        }
        for i in 0..m {
            let a_row = &self.data[i * k..(i + 1) * k];
            let out_row = &mut out.data[i * n..(i + 1) * n];
            matmul_accum_row(a_row, &other.data, n, out_row);
        }
        out
    }

    /// Reference (unblocked) implementation of [`Matrix::matmul`]:
    /// the cache-friendly i-k-j loop with the exact-zero sparsity
    /// skip. Retained as the bit-identical oracle for the blocked
    /// kernel (equivalence tests, `kernel_bench` speedup ratios).
    ///
    /// # Panics
    /// If `self.cols != other.rows`.
    pub fn matmul_naive(&self, other: &Self) -> Self {
        assert_eq!(
            self.cols, other.rows,
            "matmul_naive: inner dimensions differ ({}x{} · {}x{})",
            self.rows, self.cols, other.rows, other.cols
        );
        let (m, k, n) = (self.rows, self.cols, other.cols);
        let mut out = Matrix::zeros(m, n);
        for i in 0..m {
            let a_row = &self.data[i * k..(i + 1) * k];
            let out_row = &mut out.data[i * n..(i + 1) * n];
            for (p, &a) in a_row.iter().enumerate() {
                // Sparsity skip: exact-zero entries contribute exactly
                // nothing, so this is a speedup with identical output.
                if a == 0.0 { // lint: allow(float-eq)
                    continue;
                }
                let b_row = &other.data[p * n..(p + 1) * n];
                for (o, &b) in out_row.iter_mut().zip(b_row) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// `self · otherᵀ` without materialising the transpose.
    ///
    /// Register-blocked: four output columns (rows of `other`) are
    /// computed per pass over the shared `self` row, giving four
    /// independent accumulator chains where the naive kernel's single
    /// serial dot chain is latency-bound. Each accumulator still sums
    /// strictly in k-ascending order, so every output element is
    /// bit-identical to [`Matrix::matmul_transpose_b_naive`].
    ///
    /// # Panics
    /// If `self.cols != other.cols`.
    pub fn matmul_transpose_b(&self, other: &Self) -> Self {
        assert_eq!(
            self.cols, other.cols,
            "matmul_transpose_b: column counts differ ({}x{} · ({}x{})ᵀ)",
            self.rows, self.cols, other.rows, other.cols
        );
        let (m, k, n) = (self.rows, self.cols, other.rows);
        let mut out = Matrix::zeros(m, n);
        for i in 0..m {
            let a_row = &self.data[i * k..(i + 1) * k];
            let out_row = &mut out.data[i * n..(i + 1) * n];
            let mut j = 0;
            while j + 4 <= n {
                let b0 = &other.data[j * k..(j + 1) * k];
                let b1 = &other.data[(j + 1) * k..(j + 2) * k];
                let b2 = &other.data[(j + 2) * k..(j + 3) * k];
                let b3 = &other.data[(j + 3) * k..(j + 4) * k];
                // -0.0 is the additive identity `Iterator::sum` folds
                // from; starting there keeps the four chains bitwise
                // equal to `dot` even for k = 0 (where the sign of the
                // zero is the entire result).
                let (mut s0, mut s1, mut s2, mut s3) = (-0.0f32, -0.0f32, -0.0f32, -0.0f32);
                for ((((&a, &v0), &v1), &v2), &v3) in
                    a_row.iter().zip(b0).zip(b1).zip(b2).zip(b3)
                {
                    s0 += a * v0;
                    s1 += a * v1;
                    s2 += a * v2;
                    s3 += a * v3;
                }
                out_row[j] = s0;
                out_row[j + 1] = s1;
                out_row[j + 2] = s2;
                out_row[j + 3] = s3;
                j += 4;
            }
            for (o, jj) in out_row[j..].iter_mut().zip(j..n) {
                *o = dot(a_row, &other.data[jj * k..(jj + 1) * k]);
            }
        }
        out
    }

    /// Reference (single-chain) implementation of
    /// [`Matrix::matmul_transpose_b`]: one serial dot product per
    /// output element. Retained as the bit-identical oracle for the
    /// register-blocked kernel.
    ///
    /// # Panics
    /// If `self.cols != other.cols`.
    pub fn matmul_transpose_b_naive(&self, other: &Self) -> Self {
        assert_eq!(
            self.cols, other.cols,
            "matmul_transpose_b_naive: column counts differ ({}x{} · ({}x{})ᵀ)",
            self.rows, self.cols, other.rows, other.cols
        );
        let (m, k, n) = (self.rows, self.cols, other.rows);
        let mut out = Matrix::zeros(m, n);
        for i in 0..m {
            let a_row = &self.data[i * k..(i + 1) * k];
            for j in 0..n {
                let b_row = &other.data[j * k..(j + 1) * k];
                out.data[i * n + j] = dot(a_row, b_row);
            }
        }
        out
    }

    /// The transposed matrix.
    pub fn transpose(&self) -> Self {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.data[c * self.rows + r] = self.data[r * self.cols + c];
            }
        }
        out
    }

    /// Horizontal concatenation `[self | other]`.
    ///
    /// # Panics
    /// If the row counts differ.
    pub fn concat_cols(&self, other: &Self) -> Self {
        assert_eq!(
            self.rows, other.rows,
            "concat_cols: row counts differ ({} vs {})",
            self.rows, other.rows
        );
        let cols = self.cols + other.cols;
        let mut data = Vec::with_capacity(self.rows * cols);
        for r in 0..self.rows {
            data.extend_from_slice(self.row(r));
            data.extend_from_slice(other.row(r));
        }
        Self { rows: self.rows, cols, data }
    }

    /// Vertical concatenation (`self` on top of `other`).
    ///
    /// # Panics
    /// If the column counts differ.
    pub fn concat_rows(&self, other: &Self) -> Self {
        assert_eq!(
            self.cols, other.cols,
            "concat_rows: column counts differ ({} vs {})",
            self.cols, other.cols
        );
        let mut data = self.data.clone();
        data.extend_from_slice(&other.data);
        Self { rows: self.rows + other.rows, cols: self.cols, data }
    }

    /// Copies rows `start..start + len` into a new matrix.
    ///
    /// # Panics
    /// If the range exceeds the row count.
    pub fn slice_rows(&self, start: usize, len: usize) -> Self {
        assert!(
            start + len <= self.rows,
            "slice_rows: {start}..{} out of bounds ({} rows)",
            start + len,
            self.rows
        );
        Self {
            rows: len,
            cols: self.cols,
            data: self.data[start * self.cols..(start + len) * self.cols].to_vec(),
        }
    }

    /// Gathers the given rows (with repetition allowed) into a new matrix.
    ///
    /// # Panics
    /// If any index is out of bounds.
    pub fn gather_rows(&self, indices: &[usize]) -> Self {
        let mut data = Vec::with_capacity(indices.len() * self.cols);
        for &i in indices {
            data.extend_from_slice(self.row(i));
        }
        Self { rows: indices.len(), cols: self.cols, data }
    }

    /// Adds row `r` of `src` into row `indices[r]` of `self`
    /// (the adjoint of [`Matrix::gather_rows`]).
    ///
    /// # Panics
    /// If shapes are incompatible or an index is out of bounds.
    pub fn scatter_add_rows(&mut self, indices: &[usize], src: &Self) {
        assert_eq!(src.rows, indices.len(), "scatter_add_rows: {} rows vs {} indices", src.rows, indices.len());
        assert_eq!(src.cols, self.cols, "scatter_add_rows: column counts differ");
        for (r, &i) in indices.iter().enumerate() {
            assert!(i < self.rows, "scatter_add_rows: index {i} out of bounds ({} rows)", self.rows);
            let dst = &mut self.data[i * self.cols..(i + 1) * self.cols];
            for (d, &s) in dst.iter_mut().zip(src.row(r)) {
                *d += s;
            }
        }
    }

    /// Repeats a `1×c` row `times` times.
    ///
    /// # Panics
    /// If `self` is not a single row.
    pub fn repeat_rows(&self, times: usize) -> Self {
        assert_eq!(self.rows, 1, "repeat_rows: expected a 1-row matrix, got {} rows", self.rows);
        let mut data = Vec::with_capacity(times * self.cols);
        for _ in 0..times {
            data.extend_from_slice(&self.data);
        }
        Self { rows: times, cols: self.cols, data }
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Mean of all elements (`0.0` for an empty matrix).
    pub fn mean(&self) -> f32 {
        if self.data.is_empty() {
            0.0
        } else {
            self.sum() / self.data.len() as f32
        }
    }

    /// Column-wise sum as a `1×cols` row vector.
    pub fn sum_rows(&self) -> Self {
        let mut out = Matrix::zeros(1, self.cols);
        for r in 0..self.rows {
            for (o, &x) in out.data.iter_mut().zip(self.row(r)) {
                *o += x;
            }
        }
        out
    }

    /// Column-wise mean as a `1×cols` row vector.
    ///
    /// # Panics
    /// If the matrix has zero rows.
    pub fn mean_rows(&self) -> Self {
        assert!(self.rows > 0, "mean_rows: matrix has no rows");
        let mut out = self.sum_rows();
        out.scale_assign(1.0 / self.rows as f32);
        out
    }

    /// Maximum element (`-inf` for an empty matrix).
    pub fn max(&self) -> f32 {
        self.data.iter().copied().fold(f32::NEG_INFINITY, f32::max)
    }

    /// Minimum element (`+inf` for an empty matrix).
    pub fn min(&self) -> f32 {
        self.data.iter().copied().fold(f32::INFINITY, f32::min)
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f32 {
        self.data.iter().map(|x| x * x).sum::<f32>().sqrt()
    }

    /// Index of the maximum element of row `r` (first on ties).
    ///
    /// # Panics
    /// If the matrix has zero columns or `r` is out of bounds.
    pub fn argmax_row(&self, r: usize) -> usize {
        assert!(self.cols > 0, "argmax_row: matrix has no columns");
        let row = self.row(r);
        let mut best = 0;
        for (i, &x) in row.iter().enumerate() {
            if x > row[best] {
                best = i;
            }
        }
        best
    }

    /// `true` when every paired element differs by at most `tol`.
    ///
    /// Shapes must match for the comparison to succeed.
    pub fn approx_eq(&self, other: &Self, tol: f32) -> bool {
        self.shape() == other.shape()
            && self.data.iter().zip(&other.data).all(|(&a, &b)| (a - b).abs() <= tol)
    }

    /// `true` when every element is finite (no NaN / ±inf).
    pub fn is_finite(&self) -> bool {
        self.data.iter().all(|x| x.is_finite())
    }

    #[inline]
    fn assert_same_shape(&self, other: &Self, what: &str) {
        assert_eq!(
            self.shape(),
            other.shape(),
            "{what}: shapes differ ({}x{} vs {}x{})",
            self.rows,
            self.cols,
            other.rows,
            other.cols
        );
    }
}

/// Dot product of two equal-length slices.
#[inline]
pub(crate) fn dot(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(&x, &y)| x * y).sum()
}

/// One output row of the blocked [`Matrix::matmul`]: accumulates
/// `a_row · B` into `out_row`, four rows of `B` per pass.
///
/// The fused fast path requires all four `a` coefficients non-zero so
/// the exact-zero sparsity skip of the naive kernel (which prevents
/// both wasted work and `0·inf = NaN` pollution) keeps byte-identical
/// semantics: any quad containing a zero falls back to per-row AXPY
/// with the same skip. Inside the fused loop the four `+=` statements
/// are deliberately separate — per element the additions happen in the
/// same k-ascending order as the naive kernel, which is what makes the
/// result bit-identical rather than merely close.
#[inline]
fn matmul_accum_row(a_row: &[f32], b: &[f32], n: usize, out_row: &mut [f32]) {
    let mut quads = a_row.chunks_exact(4);
    let mut p = 0;
    for quad in quads.by_ref() {
        let (a0, a1, a2, a3) = (quad[0], quad[1], quad[2], quad[3]);
        // lint: allow(float-eq) — exact-zero gate, same as the naive kernel.
        if a0 != 0.0 && a1 != 0.0 && a2 != 0.0 && a3 != 0.0 { // lint: allow(float-eq)
            let b0 = &b[p * n..(p + 1) * n];
            let b1 = &b[(p + 1) * n..(p + 2) * n];
            let b2 = &b[(p + 2) * n..(p + 3) * n];
            let b3 = &b[(p + 3) * n..(p + 4) * n];
            for ((((o, &v0), &v1), &v2), &v3) in
                out_row.iter_mut().zip(b0).zip(b1).zip(b2).zip(b3)
            {
                *o += a0 * v0;
                *o += a1 * v1;
                *o += a2 * v2;
                *o += a3 * v3;
            }
        } else {
            for (q, &a) in quad.iter().enumerate() {
                if a == 0.0 { // lint: allow(float-eq)
                    continue;
                }
                let b_row = &b[(p + q) * n..(p + q + 1) * n];
                for (o, &v) in out_row.iter_mut().zip(b_row) {
                    *o += a * v;
                }
            }
        }
        p += 4;
    }
    for (q, &a) in quads.remainder().iter().enumerate() {
        if a == 0.0 { // lint: allow(float-eq)
            continue;
        }
        let b_row = &b[(p + q) * n..(p + q + 1) * n];
        for (o, &v) in out_row.iter_mut().zip(b_row) {
            *o += a * v;
        }
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f32;

    #[inline]
    fn index(&self, (r, c): (usize, usize)) -> &f32 {
        assert!(r < self.rows && c < self.cols, "index ({r},{c}) out of bounds for {}x{}", self.rows, self.cols);
        &self.data[r * self.cols + c]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    #[inline]
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f32 {
        assert!(r < self.rows && c < self.cols, "index ({r},{c}) out of bounds for {}x{}", self.rows, self.cols);
        &mut self.data[r * self.cols + c]
    }
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        const MAX_ROWS: usize = 8;
        for r in 0..self.rows.min(MAX_ROWS) {
            write!(f, "  [")?;
            const MAX_COLS: usize = 8;
            for (c, v) in self.row(r).iter().take(MAX_COLS).enumerate() {
                if c > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{v:.4}")?;
            }
            if self.cols > MAX_COLS {
                write!(f, ", …")?;
            }
            writeln!(f, "]")?;
        }
        if self.rows > MAX_ROWS {
            writeln!(f, "  …")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_ones_full() {
        let z = Matrix::zeros(2, 3);
        assert_eq!(z.shape(), (2, 3));
        assert!(z.as_slice().iter().all(|&x| x == 0.0));
        assert!(Matrix::ones(2, 2).as_slice().iter().all(|&x| x == 1.0));
        assert!(Matrix::full(1, 4, 7.5).as_slice().iter().all(|&x| x == 7.5));
    }

    #[test]
    #[should_panic(expected = "does not match shape")]
    fn from_vec_bad_len_panics() {
        let _ = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn from_fn_and_index() {
        let m = Matrix::from_fn(2, 3, |r, c| (r * 10 + c) as f32);
        assert_eq!(m[(0, 0)], 0.0);
        assert_eq!(m[(1, 2)], 12.0);
        assert_eq!(m.row(1), &[10.0, 11.0, 12.0]);
    }

    #[test]
    fn eye_is_identity_under_matmul() {
        let m = Matrix::from_fn(3, 3, |r, c| (r * 3 + c) as f32);
        let i = Matrix::eye(3);
        assert!(m.matmul(&i).approx_eq(&m, 1e-6));
        assert!(i.matmul(&m).approx_eq(&m, 1e-6));
    }

    #[test]
    fn matmul_known_values() {
        let a = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = Matrix::from_vec(3, 2, vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
        let c = a.matmul(&b);
        let expected = Matrix::from_vec(2, 2, vec![58.0, 64.0, 139.0, 154.0]);
        assert!(c.approx_eq(&expected, 1e-5));
    }

    #[test]
    fn matmul_transpose_b_matches_explicit_transpose() {
        let a = Matrix::from_fn(3, 4, |r, c| (r + c) as f32 * 0.5);
        let b = Matrix::from_fn(5, 4, |r, c| (r * c) as f32 * 0.25 - 1.0);
        assert!(a.matmul_transpose_b(&b).approx_eq(&a.matmul(&b.transpose()), 1e-5));
    }

    #[test]
    #[should_panic(expected = "inner dimensions differ")]
    fn matmul_shape_mismatch_panics() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let _ = a.matmul(&b);
    }

    #[test]
    fn transpose_involution() {
        let m = Matrix::from_fn(3, 5, |r, c| (r * 5 + c) as f32);
        assert_eq!(m.transpose().transpose(), m);
        assert_eq!(m.transpose()[(4, 2)], m[(2, 4)]);
    }

    #[test]
    fn elementwise_ops() {
        let a = Matrix::from_vec(1, 3, vec![1.0, 2.0, 3.0]);
        let b = Matrix::from_vec(1, 3, vec![4.0, 5.0, 6.0]);
        assert_eq!(a.add(&b).as_slice(), &[5.0, 7.0, 9.0]);
        assert_eq!(b.sub(&a).as_slice(), &[3.0, 3.0, 3.0]);
        assert_eq!(a.mul_elem(&b).as_slice(), &[4.0, 10.0, 18.0]);
        assert_eq!(a.scale(2.0).as_slice(), &[2.0, 4.0, 6.0]);
    }

    #[test]
    fn add_assign_and_axpy() {
        let mut a = Matrix::from_vec(1, 2, vec![1.0, 2.0]);
        let b = Matrix::from_vec(1, 2, vec![10.0, 20.0]);
        a.add_assign(&b);
        assert_eq!(a.as_slice(), &[11.0, 22.0]);
        a.add_scaled_assign(&b, 0.5);
        assert_eq!(a.as_slice(), &[16.0, 32.0]);
    }

    #[test]
    fn row_broadcast_add() {
        let m = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        let bias = Matrix::from_vec(1, 2, vec![10.0, 20.0]);
        assert_eq!(m.add_row_broadcast(&bias).as_slice(), &[11.0, 22.0, 13.0, 24.0]);
    }

    #[test]
    fn concat_cols_and_rows() {
        let a = Matrix::from_vec(2, 1, vec![1.0, 2.0]);
        let b = Matrix::from_vec(2, 2, vec![3.0, 4.0, 5.0, 6.0]);
        let c = a.concat_cols(&b);
        assert_eq!(c.shape(), (2, 3));
        assert_eq!(c.row(0), &[1.0, 3.0, 4.0]);
        assert_eq!(c.row(1), &[2.0, 5.0, 6.0]);

        let d = Matrix::from_vec(1, 3, vec![7.0, 8.0, 9.0]);
        let e = c.concat_rows(&d);
        assert_eq!(e.shape(), (3, 3));
        assert_eq!(e.row(2), &[7.0, 8.0, 9.0]);
    }

    #[test]
    fn slice_gather_scatter_roundtrip() {
        let m = Matrix::from_fn(4, 2, |r, c| (r * 2 + c) as f32);
        let s = m.slice_rows(1, 2);
        assert_eq!(s.row(0), m.row(1));
        assert_eq!(s.row(1), m.row(2));

        let g = m.gather_rows(&[3, 0, 3]);
        assert_eq!(g.row(0), m.row(3));
        assert_eq!(g.row(2), m.row(3));

        let mut acc = Matrix::zeros(4, 2);
        acc.scatter_add_rows(&[3, 0, 3], &g);
        // row 3 gathered twice → accumulated twice.
        assert_eq!(acc.row(3), &[12.0, 14.0]);
        assert_eq!(acc.row(0), &[0.0, 1.0]);
        assert_eq!(acc.row(1), &[0.0, 0.0]);
    }

    #[test]
    fn repeat_rows_tiles_single_row() {
        let v = Matrix::row_vector(vec![1.0, 2.0]);
        let t = v.repeat_rows(3);
        assert_eq!(t.shape(), (3, 2));
        assert!(t.rows_iter().all(|r| r == [1.0, 2.0]));
    }

    #[test]
    fn reductions() {
        let m = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(m.sum(), 10.0);
        assert_eq!(m.mean(), 2.5);
        assert_eq!(m.sum_rows().as_slice(), &[4.0, 6.0]);
        assert_eq!(m.mean_rows().as_slice(), &[2.0, 3.0]);
        assert_eq!(m.max(), 4.0);
        assert_eq!(m.min(), 1.0);
        assert!((m.frobenius_norm() - 30.0_f32.sqrt()).abs() < 1e-6);
    }

    #[test]
    fn argmax_first_on_ties() {
        let m = Matrix::from_vec(1, 4, vec![0.5, 2.0, 2.0, 1.0]);
        assert_eq!(m.argmax_row(0), 1);
    }

    #[test]
    fn scalar_extraction() {
        assert_eq!(Matrix::full(1, 1, 3.25).scalar(), 3.25);
    }

    #[test]
    fn json_roundtrip() {
        let m = Matrix::from_fn(2, 3, |r, c| (r + c) as f32 + 0.125);
        let json = groupsa_json::to_string(&m);
        let back: Matrix = groupsa_json::from_str(&json).unwrap();
        assert_eq!(m, back);
    }

    #[test]
    fn is_finite_detects_nan() {
        let mut m = Matrix::ones(2, 2);
        assert!(m.is_finite());
        m[(0, 1)] = f32::NAN;
        assert!(!m.is_finite());
    }
}
