//! Finite-difference gradient checking.
//!
//! Used by the test suites of this crate and `groupsa-nn` to verify every
//! analytic backward pass against a central-difference approximation.

use crate::Matrix;

/// Central-difference numeric gradient of a scalar function `f` at `x`.
///
/// Perturbs each element by `±eps` and evaluates `f` twice per element;
/// intended for small test matrices only.
pub fn finite_diff_grad(x: &Matrix, eps: f32, mut f: impl FnMut(&Matrix) -> f32) -> Matrix {
    let mut grad = Matrix::zeros(x.rows(), x.cols());
    let mut xp = x.clone();
    for i in 0..x.len() {
        let orig = xp.as_slice()[i];
        xp.as_mut_slice()[i] = orig + eps;
        let fp = f(&xp);
        xp.as_mut_slice()[i] = orig - eps;
        let fm = f(&xp);
        xp.as_mut_slice()[i] = orig;
        grad.as_mut_slice()[i] = (fp - fm) / (2.0 * eps);
    }
    grad
}

/// Asserts that the analytic gradient returned by `run` matches the
/// finite-difference gradient of its scalar output.
///
/// `run` maps an input matrix to `(loss, d loss / d input)`. The
/// comparison uses a relative tolerance: each element must satisfy
/// `|a − n| ≤ tol · max(1, |a|, |n|)`.
///
/// # Panics
/// If any element disagrees beyond tolerance (with a diagnostic message).
pub fn assert_grad_matches(
    x0: &Matrix,
    eps: f32,
    tol: f32,
    mut run: impl FnMut(&Matrix) -> (f32, Matrix),
) {
    let (_, analytic) = run(x0);
    let numeric = finite_diff_grad(x0, eps, |m| run(m).0);
    assert_eq!(analytic.shape(), x0.shape(), "analytic gradient has wrong shape");
    for i in 0..x0.len() {
        let a = analytic.as_slice()[i];
        let n = numeric.as_slice()[i];
        let scale = 1.0_f32.max(a.abs()).max(n.abs());
        assert!(
            (a - n).abs() <= tol * scale,
            "gradient mismatch at flat index {i}: analytic={a}, numeric={n} (tol {tol})"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finite_diff_of_quadratic() {
        // f(x) = Σ x² ⇒ ∇f = 2x.
        let x = Matrix::from_vec(1, 3, vec![1.0, -2.0, 0.5]);
        let g = finite_diff_grad(&x, 1e-2, |m| m.as_slice().iter().map(|v| v * v).sum());
        let expected = x.scale(2.0);
        assert!(g.approx_eq(&expected, 1e-3), "{g:?} vs {expected:?}");
    }

    #[test]
    fn assert_grad_matches_accepts_correct_gradient() {
        let x = Matrix::from_vec(2, 2, vec![0.1, 0.4, -0.7, 1.1]);
        assert_grad_matches(&x, 1e-2, 1e-2, |m| {
            let loss: f32 = m.as_slice().iter().map(|v| v * v).sum();
            (loss, m.scale(2.0))
        });
    }

    #[test]
    #[should_panic(expected = "gradient mismatch")]
    fn assert_grad_matches_rejects_wrong_gradient() {
        let x = Matrix::from_vec(1, 2, vec![0.3, -0.9]);
        assert_grad_matches(&x, 1e-2, 1e-3, |m| {
            let loss: f32 = m.as_slice().iter().map(|v| v * v).sum();
            (loss, m.scale(3.0)) // wrong: should be 2x
        });
    }
}
