//! Numerically stable scalar and row-wise operations.
//!
//! These free functions are shared between the forward pass of the autodiff
//! [`Graph`](crate::Graph) and gradient-free inference paths (evaluation,
//! the "fast" recommendation mode of paper §II-F).

use crate::Matrix;

/// Numerically stable logistic sigmoid `1 / (1 + e^{-x})`.
#[inline]
pub fn sigmoid(x: f32) -> f32 {
    if x >= 0.0 {
        1.0 / (1.0 + (-x).exp())
    } else {
        let e = x.exp();
        e / (1.0 + e)
    }
}

/// Numerically stable softplus `ln(1 + e^x)`.
///
/// Uses the identity `softplus(x) = max(x, 0) + ln(1 + e^{-|x|})`, which
/// never overflows and loses no precision for large `|x|`.
#[inline]
pub fn softplus(x: f32) -> f32 {
    x.max(0.0) + (-x.abs()).exp().ln_1p()
}

/// Rectified linear unit.
#[inline]
pub fn relu(x: f32) -> f32 {
    x.max(0.0)
}

/// `log(Σ e^{x_i})` over a slice, stabilised by the running maximum.
///
/// Returns `-inf` for an empty slice (the sum of no exponentials).
pub fn log_sum_exp(xs: &[f32]) -> f32 {
    let m = xs.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    if m == f32::NEG_INFINITY {
        return f32::NEG_INFINITY;
    }
    m + xs.iter().map(|&x| (x - m).exp()).sum::<f32>().ln()
}

/// In-place stable softmax over a single slice.
///
/// Entries equal to `-inf` receive probability exactly `0`, which is how
/// the social bias matrix of paper Eq. (4)–(5) disables attention between
/// socially unconnected members. If *every* entry is `-inf` the result is
/// a uniform distribution (a group member with no in-group friends still
/// attends to themself in the model; this fallback keeps the function
/// total).
pub fn softmax_inplace(xs: &mut [f32]) {
    // Three slice-iterator passes (max, exp+sum, scale) — no indexing,
    // so the only bounds checks are the iterators' loop conditions,
    // and no allocation anywhere. The sum is accumulated serially in
    // element order on purpose: splitting it into SIMD lanes would
    // change the rounding and break the bit-identity contract the
    // digest tests enforce.
    let m = xs.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    if m == f32::NEG_INFINITY {
        let u = 1.0 / xs.len().max(1) as f32;
        xs.iter_mut().for_each(|x| *x = u);
        return;
    }
    let mut sum = 0.0;
    for x in xs.iter_mut() {
        *x = (*x - m).exp();
        sum += *x;
    }
    let inv = 1.0 / sum;
    xs.iter_mut().for_each(|x| *x *= inv);
}

/// Row-wise stable softmax of a matrix.
pub fn softmax_rows(m: &Matrix) -> Matrix {
    let mut out = m.clone();
    softmax_rows_inplace(&mut out);
    out
}

/// Row-wise stable softmax, overwriting the matrix.
///
/// The allocation-free twin of [`softmax_rows`] for inference hot
/// paths that own their logits (e.g. attention scores about to be
/// discarded): one [`softmax_inplace`] per row, no clone.
pub fn softmax_rows_inplace(m: &mut Matrix) {
    for r in 0..m.rows() {
        softmax_inplace(m.row_mut(r));
    }
}

/// Row-wise layer normalisation with affine parameters.
///
/// Each row is shifted to zero mean and scaled to unit variance
/// (`eps`-regularised), then scaled by `gamma` and shifted by `beta`
/// (both `1×cols`).
///
/// # Panics
/// If `gamma` or `beta` is not `1×cols`.
pub fn layer_norm_rows(x: &Matrix, gamma: &Matrix, beta: &Matrix, eps: f32) -> Matrix {
    assert_eq!(gamma.shape(), (1, x.cols()), "layer_norm_rows: gamma must be 1x{}", x.cols());
    assert_eq!(beta.shape(), (1, x.cols()), "layer_norm_rows: beta must be 1x{}", x.cols());
    let mut out = x.clone();
    let n = x.cols() as f32;
    for r in 0..x.rows() {
        let row = out.row_mut(r);
        let mean = row.iter().sum::<f32>() / n;
        let var = row.iter().map(|&v| (v - mean) * (v - mean)).sum::<f32>() / n;
        let rstd = 1.0 / (var + eps).sqrt();
        for ((v, &g), &b) in row.iter_mut().zip(gamma.as_slice()).zip(beta.as_slice()) {
            *v = (*v - mean) * rstd * g + b;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sigmoid_basics() {
        assert!((sigmoid(0.0) - 0.5).abs() < 1e-7);
        assert!(sigmoid(50.0) > 0.999_999);
        assert!(sigmoid(-50.0) < 1e-6);
        // Extreme inputs stay finite.
        assert!(sigmoid(1e9).is_finite());
        assert!(sigmoid(-1e9).is_finite());
    }

    #[test]
    fn sigmoid_symmetry() {
        for &x in &[0.1, 1.0, 3.5, 10.0] {
            assert!((sigmoid(x) + sigmoid(-x) - 1.0).abs() < 1e-6);
        }
    }

    #[test]
    fn softplus_matches_naive_in_safe_range() {
        for &x in &[-5.0_f32, -1.0, 0.0, 0.5, 4.0] {
            let naive = (1.0 + x.exp()).ln();
            assert!((softplus(x) - naive).abs() < 1e-5, "x={x}");
        }
    }

    #[test]
    fn softplus_extremes() {
        assert!((softplus(100.0) - 100.0).abs() < 1e-4);
        assert!(softplus(-100.0).abs() < 1e-6);
        assert!(softplus(1e9).is_finite());
    }

    #[test]
    fn log_sum_exp_stable() {
        let v = [1000.0, 1000.0];
        assert!((log_sum_exp(&v) - (1000.0 + 2.0_f32.ln())).abs() < 1e-3);
        assert_eq!(log_sum_exp(&[]), f32::NEG_INFINITY);
    }

    #[test]
    fn softmax_sums_to_one_and_orders() {
        let mut v = [1.0, 2.0, 3.0];
        softmax_inplace(&mut v);
        assert!((v.iter().sum::<f32>() - 1.0).abs() < 1e-6);
        assert!(v[0] < v[1] && v[1] < v[2]);
    }

    #[test]
    fn softmax_masked_entries_get_zero() {
        let mut v = [0.5, f32::NEG_INFINITY, 1.5];
        softmax_inplace(&mut v);
        assert_eq!(v[1], 0.0);
        assert!((v[0] + v[2] - 1.0).abs() < 1e-6);
    }

    #[test]
    fn softmax_all_masked_is_uniform() {
        let mut v = [f32::NEG_INFINITY; 4];
        softmax_inplace(&mut v);
        assert!(v.iter().all(|&x| (x - 0.25).abs() < 1e-7));
    }

    #[test]
    fn softmax_shift_invariance() {
        let mut a = [0.3_f32, -1.2, 2.0];
        let mut b = [100.3_f32, 99.0 - 0.2, 102.0];
        softmax_inplace(&mut a);
        softmax_inplace(&mut b);
        for (x, y) in a.iter().zip(&b) {
            assert!((x - y).abs() < 1e-5);
        }
    }

    #[test]
    fn softmax_rows_rowwise() {
        let m = Matrix::from_vec(2, 2, vec![0.0, 0.0, 10.0, 0.0]);
        let s = softmax_rows(&m);
        assert!((s[(0, 0)] - 0.5).abs() < 1e-6);
        assert!(s[(1, 0)] > 0.99);
    }

    #[test]
    fn layer_norm_normalises() {
        let x = Matrix::from_vec(1, 4, vec![1.0, 2.0, 3.0, 4.0]);
        let g = Matrix::ones(1, 4);
        let b = Matrix::zeros(1, 4);
        let y = layer_norm_rows(&x, &g, &b, 1e-5);
        assert!(y.mean().abs() < 1e-5);
        let var = y.as_slice().iter().map(|v| v * v).sum::<f32>() / 4.0;
        assert!((var - 1.0).abs() < 1e-3);
    }

    #[test]
    fn layer_norm_affine() {
        let x = Matrix::from_vec(1, 2, vec![-1.0, 1.0]);
        let g = Matrix::from_vec(1, 2, vec![2.0, 2.0]);
        let b = Matrix::from_vec(1, 2, vec![5.0, 5.0]);
        let y = layer_norm_rows(&x, &g, &b, 1e-8);
        // normalised x is (-1, 1) already (unit variance), so y = 2*x + 5.
        assert!((y[(0, 0)] - 3.0).abs() < 1e-3);
        assert!((y[(0, 1)] - 7.0).abs() < 1e-3);
    }
}
