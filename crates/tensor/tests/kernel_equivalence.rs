//! Bit-identity pins for the vectorization-friendly kernel rewrites.
//!
//! The blocked [`Matrix::matmul`] and register-blocked
//! [`Matrix::matmul_transpose_b`] promise results *bit-identical* to
//! their retained naive references (`matmul_naive`,
//! `matmul_transpose_b_naive`) — not merely close. That promise is
//! what lets the serve/digest determinism contract survive kernel
//! rewrites, so it is pinned here across:
//!
//! * odd and prime dimensions (0, 1, 2, 3, 5, 7, 13, 17, 31, 33) that
//!   exercise every remainder lane of the 4-wide blocking;
//! * planted exact zeros (including quads with *some* zeros, which
//!   force the fused fast path to fall back without changing results);
//! * non-finite values (`±inf`, `NaN`) in positions the sparsity skip
//!   must and must not touch.

use groupsa_tensor::{ops, Matrix};

/// Deterministic pseudo-random fill with planted zeros: roughly one in
/// five entries is exactly `0.0`, so 4-wide quads frequently contain a
/// mix of zero and non-zero coefficients.
fn filled(rows: usize, cols: usize, seed: u64) -> Matrix {
    let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
    Matrix::from_fn(rows, cols, |_, _| {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        let u = (state >> 33) as u32;
        if u % 5 == 0 {
            0.0
        } else {
            (u as f32 / u32::MAX as f32 - 0.5) * 4.0
        }
    })
}

/// Exact element-wise bit equality, treating any-NaN-bits as equal to
/// any-NaN-bits (the payload of a propagated NaN is not part of the
/// contract; *whether* an element is NaN is).
fn assert_bits_equal(a: &Matrix, b: &Matrix, what: &str) {
    assert_eq!(a.shape(), b.shape(), "{what}: shapes differ");
    for (i, (x, y)) in a.as_slice().iter().zip(b.as_slice()).enumerate() {
        let same = x.to_bits() == y.to_bits() || (x.is_nan() && y.is_nan());
        assert!(same, "{what}: element {i} differs: {x:?} ({:#010x}) vs {y:?} ({:#010x})", x.to_bits(), y.to_bits());
    }
}

const DIMS: &[usize] = &[0, 1, 2, 3, 5, 7, 13, 17, 31, 33];

#[test]
fn blocked_matmul_matches_naive_across_prime_shapes() {
    for &m in DIMS {
        for &k in DIMS {
            for &n in &[0usize, 1, 3, 5, 8, 17, 33] {
                let a = filled(m, k, (m * 131 + k * 7 + n) as u64);
                let b = filled(k, n, (m + k * 17 + n * 3) as u64 + 999);
                assert_bits_equal(
                    &a.matmul(&b),
                    &a.matmul_naive(&b),
                    &format!("matmul {m}x{k}·{k}x{n}"),
                );
            }
        }
    }
}

#[test]
fn blocked_matmul_transpose_b_matches_naive_across_prime_shapes() {
    for &m in DIMS {
        for &k in DIMS {
            for &n in &[0usize, 1, 2, 3, 4, 5, 7, 17, 33] {
                let a = filled(m, k, (m * 31 + k + n * 11) as u64);
                let b = filled(n, k, (m + k * 5 + n * 13) as u64 + 4242);
                assert_bits_equal(
                    &a.matmul_transpose_b(&b),
                    &a.matmul_transpose_b_naive(&b),
                    &format!("matmul_transpose_b {m}x{k}·({n}x{k})T"),
                );
            }
        }
    }
}

#[test]
fn sparsity_skip_semantics_survive_blocking() {
    // Column p of A is exactly zero; row p of B is poisoned with inf /
    // NaN. The naive kernel's sparsity skip never touches that row, so
    // the output stays finite — the blocked kernel must reproduce
    // that, including when the zero sits anywhere inside a 4-quad.
    for zero_col in 0..9usize {
        let k = 9;
        let a = Matrix::from_fn(5, k, |r, c| {
            if c == zero_col {
                0.0
            } else {
                (r * k + c) as f32 * 0.25 - 2.0
            }
        });
        let b = Matrix::from_fn(k, 7, |r, c| {
            if r == zero_col {
                if c % 2 == 0 {
                    f32::INFINITY
                } else {
                    f32::NAN
                }
            } else {
                (r + c) as f32 * 0.5 - 1.0
            }
        });
        let blocked = a.matmul(&b);
        let naive = a.matmul_naive(&b);
        assert!(naive.is_finite(), "skip keeps poisoned row out (zero_col={zero_col})");
        assert_bits_equal(&blocked, &naive, &format!("poisoned matmul zero_col={zero_col}"));
    }
}

#[test]
fn negative_zero_coefficients_are_skipped_identically() {
    // `-0.0 == 0.0` is true, so both kernels must skip negative zeros
    // too — multiplying through would flip signs of zero and change
    // parameter-checksum bits downstream.
    let mut a = filled(4, 8, 7);
    a.as_mut_slice()[3] = -0.0;
    a.as_mut_slice()[9] = -0.0;
    let b = filled(8, 6, 8);
    assert_bits_equal(&a.matmul(&b), &a.matmul_naive(&b), "matmul with -0.0");
    let bt = filled(6, 8, 9);
    assert_bits_equal(
        &a.matmul_transpose_b(&bt),
        &a.matmul_transpose_b_naive(&bt),
        "matmul_transpose_b with -0.0",
    );
}

#[test]
fn nonfinite_inputs_propagate_identically() {
    // When the coefficient is non-zero, inf and NaN must flow through
    // both kernels the same way (no skip applies).
    let mut a = filled(5, 7, 21);
    a.as_mut_slice()[2] = f32::INFINITY;
    a.as_mut_slice()[11] = f32::NEG_INFINITY;
    a.as_mut_slice()[20] = f32::NAN;
    let b = filled(7, 5, 22);
    assert_bits_equal(&a.matmul(&b), &a.matmul_naive(&b), "nonfinite matmul");
    let bt = filled(5, 7, 23);
    assert_bits_equal(
        &a.matmul_transpose_b(&bt),
        &a.matmul_transpose_b_naive(&bt),
        "nonfinite matmul_transpose_b",
    );
}

#[test]
fn softmax_rows_inplace_matches_allocating_softmax_rows() {
    for &(rows, cols) in &[(1usize, 1usize), (3, 5), (7, 13), (17, 31), (5, 1)] {
        let mut m = filled(rows, cols, (rows * 100 + cols) as u64);
        // Plant a fully-masked row and a partially-masked row.
        if rows >= 2 && cols >= 2 {
            m.row_mut(0).iter_mut().for_each(|x| *x = f32::NEG_INFINITY);
            m.row_mut(1)[0] = f32::NEG_INFINITY;
        }
        let reference = ops::softmax_rows(&m);
        let mut inplace = m.clone();
        ops::softmax_rows_inplace(&mut inplace);
        assert_bits_equal(&inplace, &reference, &format!("softmax {rows}x{cols}"));
    }
}

#[test]
fn blocked_kernels_agree_with_explicit_transpose_composition() {
    // Structural cross-check on plain finite data: A·Bᵀ via the
    // register-blocked kernel equals A·(Bᵀ) via the blocked matmul.
    // Both accumulate k-ascending per element, so even this pair is
    // bit-identical on data with no planted zeros.
    let a = Matrix::from_fn(13, 17, |r, c| ((r * 17 + c) as f32 * 0.731).sin());
    let b = Matrix::from_fn(11, 17, |r, c| ((r * 13 + c) as f32 * 0.417).cos());
    assert_bits_equal(
        &a.matmul_transpose_b(&b),
        &a.matmul(&b.transpose()),
        "A·Bᵀ vs A·(Bᵀ)",
    );
}
