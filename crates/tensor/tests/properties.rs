//! Property-based tests: algebraic laws of the tensor substrate.

use groupsa_tensor::{ops, Matrix};
use proptest::prelude::*;
use proptest::strategy::ValueTree;

/// Strategy: a matrix of the given shape with elements in [-3, 3].
fn matrix(rows: usize, cols: usize) -> impl Strategy<Value = Matrix> {
    prop::collection::vec(-3.0f32..3.0, rows * cols)
        .prop_map(move |data| Matrix::from_vec(rows, cols, data))
}

/// Strategy: small dims in 1..=6.
fn dim() -> impl Strategy<Value = usize> {
    1usize..=6
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn matmul_associative((m, k, n, p) in (dim(), dim(), dim(), dim()).prop_flat_map(|d| (Just(d.0), Just(d.1), Just(d.2), Just(d.3)))) {
        let runner = &mut proptest::test_runner::TestRunner::deterministic();
        let a = matrix(m, k).new_tree(runner).unwrap().current();
        let b = matrix(k, n).new_tree(runner).unwrap().current();
        let c = matrix(n, p).new_tree(runner).unwrap().current();
        let left = a.matmul(&b).matmul(&c);
        let right = a.matmul(&b.matmul(&c));
        prop_assert!(left.approx_eq(&right, 1e-2), "associativity failed");
    }

    #[test]
    fn add_commutative(r in dim(), c in dim(), seed in any::<u64>()) {
        let runner = &mut proptest::test_runner::TestRunner::deterministic();
        let _ = seed;
        let a = matrix(r, c).new_tree(runner).unwrap().current();
        let b = matrix(r, c).new_tree(runner).unwrap().current();
        prop_assert!(a.add(&b).approx_eq(&b.add(&a), 1e-6));
    }

    #[test]
    fn transpose_distributes_over_matmul(m in dim(), k in dim(), n in dim()) {
        let runner = &mut proptest::test_runner::TestRunner::deterministic();
        let a = matrix(m, k).new_tree(runner).unwrap().current();
        let b = matrix(k, n).new_tree(runner).unwrap().current();
        // (AB)ᵀ = BᵀAᵀ
        let left = a.matmul(&b).transpose();
        let right = b.transpose().matmul(&a.transpose());
        prop_assert!(left.approx_eq(&right, 1e-3));
    }

    #[test]
    fn matmul_transpose_b_consistent(m in dim(), k in dim(), n in dim()) {
        let runner = &mut proptest::test_runner::TestRunner::deterministic();
        let a = matrix(m, k).new_tree(runner).unwrap().current();
        let b = matrix(n, k).new_tree(runner).unwrap().current();
        prop_assert!(a.matmul_transpose_b(&b).approx_eq(&a.matmul(&b.transpose()), 1e-3));
    }

    #[test]
    fn softmax_rows_is_row_stochastic(r in dim(), c in dim()) {
        let runner = &mut proptest::test_runner::TestRunner::deterministic();
        let x = matrix(r, c).new_tree(runner).unwrap().current();
        let s = ops::softmax_rows(&x);
        for row in s.rows_iter() {
            let sum: f32 = row.iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-4, "row sum {sum}");
            prop_assert!(row.iter().all(|&p| (0.0..=1.0 + 1e-6).contains(&p)));
        }
    }

    #[test]
    fn softmax_preserves_order_within_row(c in 2usize..=8) {
        let runner = &mut proptest::test_runner::TestRunner::deterministic();
        let x = matrix(1, c).new_tree(runner).unwrap().current();
        let s = ops::softmax_rows(&x);
        for i in 0..c {
            for j in 0..c {
                if x[(0, i)] < x[(0, j)] {
                    prop_assert!(s[(0, i)] <= s[(0, j)] + 1e-6);
                }
            }
        }
    }

    #[test]
    fn gather_scatter_adjoint(rows in 2usize..=6, c in dim(), idx in prop::collection::vec(0usize..2, 1..8)) {
        // ⟨gather(A, idx), B⟩ == ⟨A, scatter(idx, B)⟩ — the defining
        // property that makes embedding-gradient scatter correct.
        let runner = &mut proptest::test_runner::TestRunner::deterministic();
        let idx: Vec<usize> = idx.iter().map(|&i| i % rows).collect();
        let a = matrix(rows, c).new_tree(runner).unwrap().current();
        let b = matrix(idx.len(), c).new_tree(runner).unwrap().current();
        let lhs: f32 = a
            .gather_rows(&idx)
            .as_slice()
            .iter()
            .zip(b.as_slice())
            .map(|(x, y)| x * y)
            .sum();
        let mut scat = Matrix::zeros(rows, c);
        scat.scatter_add_rows(&idx, &b);
        let rhs: f32 = a.as_slice().iter().zip(scat.as_slice()).map(|(x, y)| x * y).sum();
        prop_assert!((lhs - rhs).abs() < 1e-3, "lhs={lhs} rhs={rhs}");
    }

    #[test]
    fn concat_then_slice_recovers(r in dim(), c1 in dim(), c2 in dim()) {
        let runner = &mut proptest::test_runner::TestRunner::deterministic();
        let a = matrix(r, c1).new_tree(runner).unwrap().current();
        let b = matrix(r, c2).new_tree(runner).unwrap().current();
        let cat = a.concat_cols(&b);
        prop_assert_eq!(cat.shape(), (r, c1 + c2));
        for i in 0..r {
            prop_assert_eq!(&cat.row(i)[..c1], a.row(i));
            prop_assert_eq!(&cat.row(i)[c1..], b.row(i));
        }
    }

    #[test]
    fn sum_rows_matches_manual(r in dim(), c in dim()) {
        let runner = &mut proptest::test_runner::TestRunner::deterministic();
        let a = matrix(r, c).new_tree(runner).unwrap().current();
        let s = a.sum_rows();
        for j in 0..c {
            let manual: f32 = (0..r).map(|i| a[(i, j)]).sum();
            prop_assert!((s[(0, j)] - manual).abs() < 1e-4);
        }
    }

    #[test]
    fn layer_norm_output_statistics(r in dim(), c in 2usize..=8) {
        let runner = &mut proptest::test_runner::TestRunner::deterministic();
        let x = matrix(r, c).new_tree(runner).unwrap().current();
        let g = Matrix::ones(1, c);
        let b = Matrix::zeros(1, c);
        let y = ops::layer_norm_rows(&x, &g, &b, 1e-5);
        for row in y.rows_iter() {
            let mean: f32 = row.iter().sum::<f32>() / c as f32;
            prop_assert!(mean.abs() < 1e-3, "row mean {mean}");
        }
    }

    #[test]
    fn softplus_bounds(x in -50.0f32..50.0) {
        // softplus(x) ≥ max(x, 0) and softplus(x) ≥ 0, always finite.
        let y = ops::softplus(x);
        prop_assert!(y.is_finite());
        prop_assert!(y >= x.max(0.0) - 1e-5);
    }

    #[test]
    fn sigmoid_monotone(a in -30.0f32..30.0, b in -30.0f32..30.0) {
        if a < b {
            prop_assert!(ops::sigmoid(a) <= ops::sigmoid(b) + 1e-7);
        }
    }
}
