//! Property tests for the lexer's trickiest token forms: raw strings,
//! nested block comments, and comment-lookalikes inside string
//! literals. Every rule family sits on top of this token stream, so a
//! lexer desync (a string swallowing the rest of the file, a comment
//! terminating early) would silently blind the whole analyzer — these
//! properties pin the resynchronization behaviour on generated inputs
//! rather than a handful of handwritten examples.

use groupsa_lint::lexer::{lex, TokenKind};
use proptest::prelude::*;

/// A string from a fixed alphabet that is safe inside `r#"…"#`: it
/// never contains the closing `"#` because `#` is not in the alphabet.
/// Quotes, newlines, and comment-lookalikes are all fair game.
fn raw_string_body() -> impl Strategy<Value = String> {
    const ALPHABET: &[char] = &['a', 'z', '0', ' ', '\n', '"', '/', '*', '{', '\\'];
    prop::collection::vec(0..ALPHABET.len(), 0..40)
        .prop_map(|ixs| ixs.into_iter().map(|i| ALPHABET[i]).collect())
}

/// Block-comment interior junk: anything that can't open or close a
/// nested comment on its own (`*` and `/` excluded).
fn comment_junk() -> impl Strategy<Value = String> {
    const ALPHABET: &[char] = &['x', '7', ' ', '\n', '"', '{', ';'];
    prop::collection::vec(0..ALPHABET.len(), 0..30)
        .prop_map(|ixs| ixs.into_iter().map(|i| ALPHABET[i]).collect())
}

/// Plain-string interior: no quote, backslash, or newline, but `//`
/// and `/*` sequences are allowed — they must NOT start a comment.
fn plain_string_body() -> impl Strategy<Value = String> {
    const ALPHABET: &[char] = &['/', '*', 'a', ' ', ';'];
    prop::collection::vec(0..ALPHABET.len(), 0..24)
        .prop_map(|ixs| ixs.into_iter().map(|i| ALPHABET[i]).collect())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn raw_strings_swallow_their_body_and_resync(body in raw_string_body()) {
        let src = format!("let s = r#\"{body}\"#;\nfn tail() {{}}");
        let f = lex(&src);
        let strs: Vec<_> = f.tokens.iter().filter(|t| t.kind == TokenKind::Str).collect();
        prop_assert_eq!(strs.len(), 1, "exactly one string literal: {:?}", f.tokens);
        // Nothing inside the raw string leaks out as a token: the only
        // `{` in the stream is `tail`'s body brace.
        let braces = f.tokens.iter().filter(|t| t.kind == TokenKind::Punct && t.text == "{").count();
        prop_assert_eq!(braces, 1, "braces inside the raw string must not tokenize");
        // …and the lexer resynchronizes: `tail` exists on the right line.
        let tail = f.tokens.iter().find(|t| t.text == "tail");
        let expected_line = 2 + body.matches('\n').count();
        prop_assert!(tail.is_some(), "tokens after the raw string survive");
        prop_assert_eq!(tail.unwrap().line, expected_line, "newlines in the body count");
    }

    #[test]
    fn nested_block_comments_balance_at_any_depth(
        depth in 1usize..6,
        junk in comment_junk(),
    ) {
        let mut src = String::new();
        for _ in 0..depth {
            src.push_str("/*");
        }
        src.push_str(&junk);
        for _ in 0..depth {
            src.push_str("*/");
        }
        src.push_str("\ntail");
        let f = lex(&src);
        let idents: Vec<&str> =
            f.tokens.iter().filter(|t| t.kind == TokenKind::Ident).map(|t| t.text.as_str()).collect();
        prop_assert_eq!(
            idents,
            vec!["tail"],
            "the whole nested comment is consumed, nothing more"
        );
        let expected_line = 2 + junk.matches('\n').count();
        prop_assert_eq!(f.tokens[0].line, expected_line, "comment newlines advance the line counter");
    }

    #[test]
    fn comment_lookalikes_inside_strings_do_not_comment(body in plain_string_body()) {
        let src = format!("let a = \"{body}\"; let tail = 1;");
        let f = lex(&src);
        let strs: Vec<_> = f.tokens.iter().filter(|t| t.kind == TokenKind::Str).collect();
        prop_assert_eq!(strs.len(), 1, "one string literal regardless of // or /* inside");
        prop_assert!(
            f.tokens.iter().any(|t| t.kind == TokenKind::Ident && t.text == "tail"),
            "a // inside a string must not swallow the rest of the line: {:?}",
            f.tokens
        );
        prop_assert!(
            f.allows.is_empty(),
            "nothing on this line is a lint directive"
        );
    }
}
