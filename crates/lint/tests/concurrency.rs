//! Fixture tests for the concurrency-discipline families (atomics
//! manifest, lock discipline, panic reachability) plus the dead-allow
//! meta-rule. Same contract as `fixtures.rs`: every rule proves it
//! fires at exact (file, line, rule) coordinates and that the allow
//! escape hatch suppresses it. These families take injectable inputs
//! (a manifest, a hierarchy, entry points), so the tests call the
//! module-level checkers directly instead of `Analyzer`.

use groupsa_lint::callgraph::{CallGraph, SourceUnit};
use groupsa_lint::{atomics, lexer, locks, reach, rules, Analyzer};
use std::path::Path;

fn fixture(name: &str) -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures").join(name);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()))
}

fn fired(out: &rules::RuleOutcome) -> Vec<(String, usize, String)> {
    out.findings.iter().map(|f| (f.file.clone(), f.line, f.rule.clone())).collect()
}

#[test]
fn atomic_manifest_and_relaxed_publish_fire_and_suppress() {
    let rel = "crates/serve/src/swap.rs"; // a PUBLISH_FIELDS file, so `current` is a publish point
    let unit = SourceUnit::build(rel, &fixture("atomics.rs"));
    let manifest: &[atomics::AtomicEntry] = &[
        (rel, "counter", "load", "Relaxed", ""),
        (rel, "current", "store", "Relaxed", "manifested, but still a relaxed publish"),
        (rel, "current", "compare_exchange", "AcqRel,Acquire", "swap CAS"),
        (rel, "ghost", "load", "SeqCst", "row for a site that no longer exists"),
    ];
    let (out, matched) =
        atomics::check_file(rel, &unit.lexed, &unit.items, manifest, atomics::PUBLISH_FIELDS);
    assert_eq!(
        fired(&out),
        vec![
            (rel.to_string(), 4, "atomic-manifest".to_string()),
            (rel.to_string(), 5, "relaxed-publish".to_string()),
        ],
        "the unmanifested fetch_add fires; the manifested Relaxed store on the \
         publish field still fires relaxed-publish"
    );
    assert_eq!(out.suppressed, 1, "the allow-suppressed store on line 7");
    assert_eq!(matched.iter().copied().collect::<Vec<_>>(), vec![0, 1, 2]);

    let stale = atomics::stale_manifest_findings(manifest, &matched);
    let stale: Vec<(usize, &str)> = stale
        .iter()
        .map(|f| {
            let kind = if f.message.contains("stale") { "stale" } else { "unjustified" };
            (f.line, kind)
        })
        .collect();
    assert_eq!(
        stale,
        vec![(0, "unjustified"), (0, "stale")],
        "the empty-justification row and the unmatched ghost row both fire at line 0"
    );
}

#[test]
fn lock_order_and_blocking_fire_and_suppress() {
    let rel = "crates/serve/src/fixture.rs";
    let unit = SourceUnit::build(rel, &fixture("locks.rs"));
    let out = locks::check_file(rel, &unit.lexed, &unit.items, locks::LOCK_HIERARCHY);
    assert_eq!(
        fired(&out),
        vec![
            (rel.to_string(), 4, "lock-order".to_string()),
            (rel.to_string(), 10, "lock-across-blocking".to_string()),
        ],
        "queue-under-metrics inverts the hierarchy; send under the queue guard blocks; \
         correct_order and the post-drop send are silent"
    );
    assert_eq!(out.suppressed, 1, "the justified inversion is allow-suppressed");
}

#[test]
fn panic_reach_fires_across_files_and_suppresses() {
    let entry_rel = "crates/serve/src/engine.rs";
    let helper_rel = "crates/core/src/helper.rs";
    let units = vec![
        SourceUnit::build(entry_rel, &fixture("reach_entry.rs")),
        SourceUnit::build(helper_rel, &fixture("reach_helper.rs")),
    ];
    let graph = CallGraph::build(&units);
    let (out, used) = reach::check(&units, &graph, &[(entry_rel, "entry")], &|_| false);
    assert_eq!(
        fired(&out),
        vec![(helper_rel.to_string(), 3, "panic-reach".to_string())],
        "the unwrap in the reached helper fires; the one in `unreached` does not"
    );
    assert_eq!(out.suppressed, 1, "the justified expect is allow-suppressed");
    assert_eq!(used, vec![(1, 4)], "the suppression is recorded against the helper unit");
}

#[test]
fn panic_reach_skip_file_exempts_scoped_files() {
    let entry_rel = "crates/serve/src/engine.rs";
    let helper_rel = "crates/core/src/helper.rs";
    let units = vec![
        SourceUnit::build(entry_rel, &fixture("reach_entry.rs")),
        SourceUnit::build(helper_rel, &fixture("reach_helper.rs")),
    ];
    let graph = CallGraph::build(&units);
    let (out, _) =
        reach::check(&units, &graph, &[(entry_rel, "entry")], &|rel| rel == helper_rel);
    assert!(out.findings.is_empty(), "ALLOWED_FILES / panic-scope exemptions skip whole files");
}

#[test]
fn dead_allow_fires_on_stale_and_unknown_rules() {
    let rel = "crates/core/src/fixture.rs";
    let src = fixture("dead_allow.rs");
    let lexed = lexer::lex(&src);
    let analyzer = Analyzer::new(["groupsa-json".to_string()]);
    let rule_out = analyzer.analyze_lexed(rel, &lexed);
    assert!(rule_out.findings.is_empty(), "the live allow suppresses its float-eq");
    assert!(
        rule_out.used_allows.contains(&(3, "float-eq".to_string())),
        "the live allow is recorded as used"
    );

    let dead = rules::dead_allow_findings(rel, &lexed, &rule_out.used_allows);
    assert_eq!(
        fired(&dead),
        vec![
            (rel.to_string(), 4, "dead-allow".to_string()),
            (rel.to_string(), 5, "dead-allow".to_string()),
        ],
        "the stale float-eq allow and the unknown-rule allow fire; the live one does not"
    );
    assert_eq!(dead.suppressed, 1, "allow(dead-allow) silences the meta-rule itself");
    let msgs: Vec<&str> = dead.findings.iter().map(|f| f.message.as_str()).collect();
    assert!(msgs[0].contains("no longer suppresses"), "stale allows say so: {}", msgs[0]);
    assert!(msgs[1].contains("unknown rule"), "typo'd allows say so: {}", msgs[1]);
}

/// The committed workspace manifest is the audit artifact the atomics
/// family exists for: losing it (or its justifications) would silently
/// hollow out the rule, so pin that it stays populated and justified.
#[test]
fn the_committed_atomic_manifest_is_populated_and_justified() {
    assert!(
        atomics::ATOMIC_SITES.len() >= 40,
        "the workspace has ~50 distinct atomic (file, field, op, ordering) sites; \
         got {} manifest rows",
        atomics::ATOMIC_SITES.len()
    );
    for (file, field, op, ord, why) in atomics::ATOMIC_SITES {
        assert!(
            !why.trim().is_empty(),
            "manifest row ({file}, {field}, {op}, {ord}) must carry a justification"
        );
    }
}
