//! Lock-discipline fixture: hierarchy inversion, blocking under guard.
fn bad_order(s: &Shared) {
    let m = s.metrics.lock().unwrap();
    let q = s.queue.lock().unwrap();
    drop(q);
    drop(m);
}
fn blocking_under_guard(s: &Shared, tx: &Sender<u32>) {
    let g = s.queue.lock().unwrap();
    tx.send(1).ok();
    drop(g);
    tx.send(2).ok();
}
fn correct_order(s: &Shared) {
    let q = s.queue.lock().unwrap();
    let c = s.current.lock().unwrap();
    drop(c);
    drop(q);
}
fn justified(s: &Shared) {
    let m = s.metrics.lock().unwrap();
    let q = s.queue.lock().unwrap(); // lint: allow(lock-order)
    drop(q);
    drop(m);
}
