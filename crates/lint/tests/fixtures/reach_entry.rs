//! Panic-reach fixture: the serve-side entry function.
fn entry() {
    helper();
    safe();
}
