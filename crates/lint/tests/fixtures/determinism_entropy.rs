//! ambient-entropy fixture: unseeded randomness in a numeric crate.

pub fn ambient() -> u64 {
    let rng = thread_rng();
    let other = OsRng;
    let _ = (rng, other);
    0
}

pub fn reseeded() -> u64 {
    let rng = thread_rng(); // replaced by a fixed seed in prod; lint: allow(ambient-entropy)
    let _ = rng;
    0
}
