//! Dead-allow fixture: stale and typo'd escape hatches.
fn f(x: f32) -> i32 {
    let _live = x == 0.5; // lint: allow(float-eq)
    let dead = 1; // lint: allow(float-eq)
    let typo = 2; // lint: allow(no-such-rule)
    let meta = 3; // lint: allow(float-eq, dead-allow)
    dead + typo + meta
}
