//! hermeticity fixture: out-of-workspace roots.

extern crate serde;
use serde_json::Value;
use std::io;
use groupsa_json::Json;

// vendored shim, lives in-tree elsewhere; lint: allow(foreign-use)
use missing_shim::Thing;

pub fn noop(_v: Value, _j: Json, _t: Thing, _e: io::Error) {}
