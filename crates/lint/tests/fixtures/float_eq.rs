//! float-eq fixture: exact comparison against float literals.

pub fn classify(x: f32) -> u32 {
    if x == 0.0 {
        return 0;
    }
    if 1.5 != x {
        return 1;
    }
    2
}

pub fn exact_sentinel(w: f32) -> bool {
    // zero is an exact sentinel written by init; lint: allow(float-eq)
    w == 0.0
}
