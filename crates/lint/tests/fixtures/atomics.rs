//! Atomics fixture: one manifested site, one unmanifested, one Relaxed
fn f(current: &AtomicUsize, counter: &AtomicU64) {
    let _ = counter.load(Ordering::Relaxed);
    counter.fetch_add(1, Ordering::Relaxed);
    current.store(1, Ordering::Relaxed);
    let _ = current.compare_exchange(1, 2, Ordering::AcqRel, Ordering::Acquire);
    counter.store(9, Ordering::Relaxed); // lint: allow(atomic-manifest)
}
