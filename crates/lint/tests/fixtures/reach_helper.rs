//! Panic-reach fixture: the crate the entry reaches into.
fn helper() {
    might_fail().unwrap();
    recover().expect("checked above"); // lint: allow(panic-reach)
}
fn safe() -> usize {
    0
}
fn unreached() {
    boom().unwrap();
}
