//! clock-scope fixture: ambient clock reads outside the timing modules.

pub fn stamped() -> u64 {
    let t0 = Instant::now();
    let wall = SystemTime::now();
    let epoch = UNIX_EPOCH;
    let _ = (t0, wall, epoch);
    0
}

pub fn justified() -> u64 {
    // boot-banner timestamp, display only; lint: allow(clock-scope)
    let wall = SystemTime::now();
    let _ = wall;
    0
}
