//! ambient-time fixture: wall-clock reads in a numeric crate.

pub fn timed() -> u64 {
    let t0 = Instant::now();
    let epoch = SystemTime::now();
    let _ = (t0, epoch);
    0
}

pub fn justified() -> u64 {
    // timing is display-only here; lint: allow(ambient-time)
    let t0 = Instant::now();
    let _ = t0;
    0
}
