//! panic-path fixture: aborts on a serve request path.

pub fn handle(v: &[u8], o: Option<u8>) -> u8 {
    let a = o.unwrap();
    let b = o.expect("present");
    if v.is_empty() {
        panic!("empty");
    }
    let c = v[0];
    a + b + c
}

pub fn typed(v: &[u8]) -> u8 {
    let first = v.first().copied().unwrap_or(0);
    // bounds: caller validated v.len() > 1
    let second = v[1];
    let third = v.get(2).copied().unwrap(); // startup-only path; lint: allow(panic-path)
    first + second + third
}
