//! hash-container fixture: randomized iteration order in a numeric crate.

use std::collections::HashMap;

pub fn build() {
    let m: HashMap<u32, u32> = HashMap::new();
    let _ = m;
}

pub fn membership_only() {
    // membership checks only, never iterated; lint: allow(hash-container)
    let s = std::collections::HashSet::<u32>::new();
    let _ = s;
}
