//! The acceptance gate: the real workspace must lint clean.
//!
//! Every finding in the tree has either been fixed (e.g. the serve
//! request paths' unwraps became typed `ServeError`s) or carries a
//! justified `// lint: allow(…)` comment / allowlist entry. A new
//! violation anywhere in the workspace fails this test — and
//! `scripts/tier1.sh`, which runs the same analysis via the binary.

use groupsa_lint::find_workspace_root;
use std::path::Path;

#[test]
fn the_workspace_lints_clean() {
    let root = find_workspace_root(Path::new(env!("CARGO_MANIFEST_DIR")))
        .expect("workspace root above crates/lint");
    let report = groupsa_lint::run(&root).expect("analysis runs");
    assert!(
        report.files_scanned > 100,
        "sanity: the scan saw the whole tree, not a subdirectory ({} files)",
        report.files_scanned
    );
    assert!(
        report.is_clean(),
        "workspace has lint findings:\n{}",
        report.to_text()
    );
    // Cleanliness must come from the full pipeline, not a pass being
    // silently skipped: every analysis pass reports a timing.
    let passes: Vec<&str> = report.timings.iter().map(|t| t.pass.as_str()).collect();
    for expected in ["manifests", "lex+parse", "rules", "atomics", "locks", "panic-reach", "dead-allow"] {
        assert!(passes.contains(&expected), "pass `{expected}` ran (got {passes:?})");
    }
}
