//! The acceptance gate: the real workspace must lint clean.
//!
//! Every finding in the tree has either been fixed (e.g. the serve
//! request paths' unwraps became typed `ServeError`s) or carries a
//! justified `// lint: allow(…)` comment / allowlist entry. A new
//! violation anywhere in the workspace fails this test — and
//! `scripts/tier1.sh`, which runs the same analysis via the binary.

use groupsa_lint::find_workspace_root;
use std::path::Path;

#[test]
fn the_workspace_lints_clean() {
    let root = find_workspace_root(Path::new(env!("CARGO_MANIFEST_DIR")))
        .expect("workspace root above crates/lint");
    let report = groupsa_lint::run(&root).expect("analysis runs");
    assert!(
        report.files_scanned > 100,
        "sanity: the scan saw the whole tree, not a subdirectory ({} files)",
        report.files_scanned
    );
    assert!(
        report.is_clean(),
        "workspace has lint findings:\n{}",
        report.to_text()
    );
}
