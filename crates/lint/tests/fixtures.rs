//! Fixture tests: every rule family proves it fires at exact
//! (file, line, rule) coordinates and that `// lint: allow(<rule>)`
//! (or `# lint: allow(cargo-dep)` in TOML) suppresses it.
//!
//! Fixture sources live under `tests/fixtures/` — a tree the workspace
//! scanner deliberately skips, since its files violate the rules on
//! purpose. Each fixture is analyzed under a synthetic workspace path
//! so the scope rules (numeric crates, serve request paths) engage.

use groupsa_lint::{Analyzer, Finding, Report};
use std::collections::BTreeSet;
use std::path::{Path, PathBuf};

fn fixture_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures")
}

fn fixture(name: &str) -> String {
    let path = fixture_dir().join(name);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()))
}

fn analyzer() -> Analyzer {
    Analyzer::new(["groupsa-json".to_string()])
}

/// Analyze `fixture_name` as though it lived at `rel_path`, returning
/// `(line, rule)` pairs plus the suppressed count.
fn run_fixture(fixture_name: &str, rel_path: &str) -> (Vec<(usize, String)>, usize) {
    let (findings, suppressed) = analyzer().analyze_source(rel_path, &fixture(fixture_name));
    for f in &findings {
        assert_eq!(f.file, rel_path, "finding carries the analyzed path");
        assert!(!f.message.is_empty(), "finding carries a message");
    }
    (findings.into_iter().map(|f| (f.line, f.rule)).collect(), suppressed)
}

#[test]
fn ambient_time_fires_and_allow_suppresses() {
    let (fired, suppressed) = run_fixture("determinism_time.rs", "crates/tensor/src/fixture.rs");
    assert_eq!(
        fired,
        vec![(4, "ambient-time".to_string()), (5, "ambient-time".to_string())]
    );
    assert_eq!(suppressed, 1, "the justified Instant::now is allow-suppressed");
}

#[test]
fn ambient_entropy_fires_and_allow_suppresses() {
    let (fired, suppressed) = run_fixture("determinism_entropy.rs", "crates/nn/src/fixture.rs");
    assert_eq!(
        fired,
        vec![(4, "ambient-entropy".to_string()), (5, "ambient-entropy".to_string())]
    );
    assert_eq!(suppressed, 1);
}

#[test]
fn hash_container_fires_and_allow_suppresses() {
    let (fired, suppressed) = run_fixture("determinism_hash.rs", "crates/data/src/fixture.rs");
    assert_eq!(
        fired,
        vec![
            (3, "hash-container".to_string()),
            (6, "hash-container".to_string()),
            (6, "hash-container".to_string()),
        ],
        "the import and both uses on the declaration line fire"
    );
    assert_eq!(suppressed, 1);
}

#[test]
fn determinism_rules_do_not_fire_outside_numeric_crates() {
    // Outside the numeric crates the `ambient-time` rule is silent;
    // clock reads there answer to `clock-scope` instead — which is
    // itself silent inside the timing modules.
    for rel in ["crates/bench/src/lib.rs", "crates/obs/src/trace.rs"] {
        let (fired, _) = run_fixture("determinism_time.rs", rel);
        assert!(fired.is_empty(), "{rel} is a timing module: {fired:?}");
    }
    for rel in ["crates/serve/src/frozen.rs", "src/lib.rs"] {
        let (fired, _) = run_fixture("determinism_time.rs", rel);
        assert!(
            fired.iter().all(|(_, rule)| rule == "clock-scope") && !fired.is_empty(),
            "{rel} clock reads fire clock-scope, never ambient-time: {fired:?}"
        );
    }
}

#[test]
fn clock_scope_fires_outside_timing_modules_and_allow_suppresses() {
    let (fired, suppressed) = run_fixture("clock_scope.rs", "crates/serve/src/frozen.rs");
    assert_eq!(
        fired,
        vec![
            (4, "clock-scope".to_string()),
            (5, "clock-scope".to_string()),
            (6, "clock-scope".to_string()),
        ],
        "Instant::now, SystemTime, and UNIX_EPOCH all fire"
    );
    assert_eq!(suppressed, 1, "the justified banner timestamp is allow-suppressed");

    // The same file analyzes clean anywhere inside the timing modules,
    // whether matched by an exact entry or a directory prefix.
    for rel in [
        "crates/serve/src/engine.rs",
        "crates/serve/src/admission.rs",
        "crates/obs/src/telemetry.rs",
        "crates/bench/src/bin/serve_bench.rs",
        "crates/compat/criterion/src/lib.rs",
    ] {
        assert!(groupsa_lint::in_clock_scope(rel), "{rel} must be a timing module");
        let (fired, _) = run_fixture("clock_scope.rs", rel);
        assert!(fired.is_empty(), "{rel} may read clocks: {fired:?}");
    }

    // In a numeric crate the same reads are `ambient-time` findings —
    // the two rules partition the workspace instead of overlapping.
    let (fired, _) = run_fixture("clock_scope.rs", "crates/core/src/fixture.rs");
    assert!(!fired.is_empty());
    assert!(
        fired.iter().all(|(_, rule)| rule == "ambient-time"),
        "numeric crates answer to ambient-time, not clock-scope: {fired:?}"
    );
}

#[test]
fn panic_path_fires_and_both_escapes_suppress() {
    let (fired, suppressed) = run_fixture("panic_path.rs", "crates/serve/src/protocol.rs");
    assert_eq!(
        fired,
        vec![
            (4, "panic-path".to_string()),
            (5, "panic-path".to_string()),
            (7, "panic-path".to_string()),
            (9, "panic-path".to_string()),
        ],
        "unwrap, expect, panic!, and bare indexing all fire"
    );
    // The `// bounds:` indexing justification does not count as a
    // suppression (the check simply accepts it); only the allow-comment
    // unwrap does.
    assert_eq!(suppressed, 1);
}

#[test]
fn panic_path_scope_covers_bench_binary_via_recorded_allowlist() {
    // The kernel-bench binary is *in* the panic-safety scope — the same
    // fixture that fires four findings at a serve path analyzes clean
    // there only because of its recorded ALLOWED_FILES entry, not
    // because the file is silently outside the scope.
    let bench = "crates/bench/src/bin/kernel_bench.rs";
    assert!(
        groupsa_lint::PANIC_SCOPES.contains(&bench),
        "bench binary must be an explicit member of the panic scope"
    );
    let (rule, path, why) = groupsa_lint::ALLOWED_FILES
        .iter()
        .find(|(r, p, _)| *r == "panic-path" && *p == bench)
        .expect("bench binary carries a panic-path allowlist entry");
    assert_eq!((*rule, *path), ("panic-path", bench));
    assert!(!why.is_empty(), "allowlist entries must record a justification");

    let (fired, _) = run_fixture("panic_path.rs", bench);
    assert!(fired.is_empty(), "allowlisted file analyzes clean: {fired:?}");

    // An unlisted bench file stays out of scope entirely (nothing to
    // fire), so the allowlist entry is load-bearing only for files
    // that are also in PANIC_SCOPES.
    let (fired, _) = run_fixture("panic_path.rs", "crates/bench/src/bin/other.rs");
    assert!(fired.is_empty());
}

#[test]
fn hermeticity_fires_and_allow_suppresses() {
    let (fired, suppressed) = run_fixture("hermetic_use.rs", "crates/graph/src/fixture.rs");
    assert_eq!(
        fired,
        vec![(3, "extern-crate".to_string()), (4, "foreign-use".to_string())]
    );
    assert_eq!(suppressed, 1, "the allow-commented foreign root is suppressed");
}

#[test]
fn float_eq_fires_and_allow_suppresses() {
    let (fired, suppressed) = run_fixture("float_eq.rs", "crates/core/src/fixture.rs");
    assert_eq!(fired, vec![(4, "float-eq".to_string()), (7, "float-eq".to_string())]);
    assert_eq!(suppressed, 1);
}

#[test]
fn cargo_dep_fires_and_allow_suppresses() {
    let text = fixture("bad_manifest/Cargo.toml");
    let (findings, suppressed) = groupsa_lint::manifest::check_manifest(
        "bad_manifest/Cargo.toml",
        &text,
        &fixture_dir(),
        &BTreeSet::new(),
    );
    let fired: Vec<(usize, String)> = findings.iter().map(|f| (f.line, f.rule.clone())).collect();
    assert_eq!(
        fired,
        vec![
            (6, "cargo-dep".to_string()),
            (7, "cargo-dep".to_string()),
            (8, "cargo-dep".to_string()),
        ],
        "registry version, dangling path, and unknown workspace key all fire"
    );
    assert_eq!(suppressed, 1);
}

/// The report schema contract `scripts/tier1.sh` relies on: the JSON
/// written to `results/lint_report.json` must re-parse through the
/// typed schema with version, counts, and per-finding fields intact.
#[test]
fn json_report_schema_is_valid_and_roundtrips() {
    let (findings, suppressed) =
        analyzer().analyze_source("crates/core/src/fixture.rs", &fixture("float_eq.rs"));
    let report = Report::new(1, suppressed, findings).with_timings(vec![
        groupsa_lint::PassTiming { pass: "rules".to_string(), micros: 1234 },
    ]);
    let text = report.to_json_string();

    // Well-formed JSON with the documented top-level fields.
    let doc = groupsa_json::Json::parse(&text).expect("report is well-formed JSON");
    assert_eq!(doc.get("version").and_then(groupsa_json::Json::as_f64), Some(2.0));
    assert!(doc.get("files_scanned").is_some());
    assert!(doc.get("suppressed").is_some());
    let timings = doc.get("timings").and_then(groupsa_json::Json::as_array).unwrap();
    assert_eq!(timings.len(), 1, "v2 reports carry per-pass timings");
    assert_eq!(timings[0].get("pass").and_then(groupsa_json::Json::as_str), Some("rules"));
    let findings = doc.get("findings").and_then(groupsa_json::Json::as_array).unwrap();
    assert!(!findings.is_empty());
    for f in findings {
        assert!(f.get("file").and_then(groupsa_json::Json::as_str).is_some());
        assert!(f.get("line").and_then(groupsa_json::Json::as_f64).is_some());
        assert!(f.get("rule").and_then(groupsa_json::Json::as_str).is_some());
        assert!(f.get("message").and_then(groupsa_json::Json::as_str).is_some());
    }

    // And the typed roundtrip reproduces the report exactly.
    let back: Report = groupsa_json::from_str(&text).unwrap();
    assert_eq!(back, report);
}

/// Serialized findings order is (file, line, rule) regardless of the
/// order rules produced them — report bytes are deterministic.
#[test]
fn report_orders_findings_deterministically() {
    let mk = |file: &str, line: usize| Finding {
        file: file.to_string(),
        line,
        rule: "float-eq".to_string(),
        message: "m".to_string(),
    };
    let a = Report::new(2, 0, vec![mk("z.rs", 1), mk("a.rs", 9), mk("a.rs", 2)]);
    let b = Report::new(2, 0, vec![mk("a.rs", 2), mk("z.rs", 1), mk("a.rs", 9)]);
    assert_eq!(a.to_json_string(), b.to_json_string());
}
