//! Lock-discipline rules for the serve crate.
//!
//! The serve crate holds three mutex-protected resources with a
//! declared acquisition order ([`LOCK_HIERARCHY`]): the job **queue**
//! (`Mutex<VecDeque<Job>>` in `engine.rs`), the hot-swap model
//! **slot** (`Mutex<Arc<FrozenModel>>` in `swap.rs`), and any
//! **metrics** aggregation lock. Two rules check every function body
//! in [`LOCK_SCOPE`]:
//!
//! * `lock-order` — acquiring a lock whose class ranks at or below an
//!   already-held class violates the hierarchy (equal rank catches
//!   same-class re-entry, the classic self-deadlock);
//! * `lock-across-blocking` — calling a blocking operation
//!   ([`BLOCKING_CALLS`]: channel send/recv, socket accept/connect,
//!   stream read/write/flush, thread join) while a classified guard
//!   is live stalls every other thread contending for that lock for
//!   the duration of the I/O. `Condvar::wait` is deliberately *not*
//!   blocking here — it releases the guard it is given.
//!
//! The analysis is per-function and lexical: a guard bound by `let`
//! lives until its enclosing brace closes or an explicit
//! `drop(guard)`; an unbound `.lock()` in a larger expression is
//! transient, dying at the statement's `;`. Receivers not named in
//! the hierarchy (`workers`, stdout locks) don't participate —
//! classifying them would add noise without a declared order to
//! check. Cross-function holding (calling a helper that locks while
//! a guard is live) is out of scope for a lexical pass and covered
//! instead by keeping lock regions small enough to read.

use crate::items::{Item, ItemKind};
use crate::lexer::{LexedFile, Token, TokenKind};
use crate::rules::{RuleOutcome, ScopeSpec};

/// The declared serve-crate lock hierarchy, outermost class first:
/// `(class, receiver field names that acquire it)`. Locks must be
/// acquired in this order; holding a later class while acquiring an
/// earlier one is a `lock-order` finding.
pub const LOCK_HIERARCHY: &[(&str, &[&str])] = &[
    ("queue", &["queue"]),
    ("slot", &["current", "model"]),
    ("metrics", &["metrics"]),
];

/// Method names treated as blocking while a guard is held.
pub const BLOCKING_CALLS: &[&str] = &[
    "accept",
    "connect",
    "flush",
    "join",
    "read",
    "read_exact",
    "read_line",
    "read_to_end",
    "read_to_string",
    "recv",
    "recv_timeout",
    "send",
    "write",
    "write_all",
];

/// Files the lock rules apply to: the serve crate's sources.
pub static LOCK_SCOPE: ScopeSpec = ScopeSpec::new("lock rules", &["crates/serve/src/"]);

/// One live guard during the body walk.
struct Guard {
    /// Hierarchy rank of the class (index into the hierarchy).
    rank: usize,
    /// Class name, for messages.
    class: String,
    /// Binding name when `let`-bound (so `drop(name)` releases it).
    name: Option<String>,
    /// Brace depth at the binding statement; the guard dies when the
    /// walk's depth drops below it.
    depth: i32,
    /// Transient guards (no `let`) die at the next `;` at their depth.
    transient: bool,
}

/// Runs both lock rules over every non-test fn body in one file.
/// `hierarchy` is injectable so fixtures can declare their own.
pub fn check_file(
    rel: &str,
    lexed: &LexedFile,
    items: &[Item],
    hierarchy: &[(&str, &[&str])],
) -> RuleOutcome {
    let mut out = RuleOutcome::default();
    let class_of = |field: &str| -> Option<(usize, String)> {
        hierarchy
            .iter()
            .enumerate()
            .find(|(_, (_, fields))| fields.contains(&field))
            .map(|(rank, (class, _))| (rank, class.to_string()))
    };
    for it in items {
        if it.kind != ItemKind::Fn || it.in_test {
            continue;
        }
        let Some((lo, hi)) = it.body else { continue };
        check_body(rel, lexed, &lexed.tokens[..=hi.min(lexed.tokens.len() - 1)], lo, hi, &class_of, &it.symbol, &mut out);
    }
    out
}

#[allow(clippy::too_many_arguments)]
fn check_body(
    rel: &str,
    lexed: &LexedFile,
    toks: &[Token],
    lo: usize,
    hi: usize,
    class_of: &dyn Fn(&str) -> Option<(usize, String)>,
    symbol: &str,
    out: &mut RuleOutcome,
) {
    let mut depth = 0i32;
    let mut guards: Vec<Guard> = Vec::new();
    for i in lo..=hi {
        let t = &toks[i];
        if t.kind == TokenKind::Punct {
            match t.text.as_str() {
                "{" => depth += 1,
                "}" => {
                    depth -= 1;
                    guards.retain(|g| g.depth <= depth);
                }
                ";" => guards.retain(|g| !(g.transient && g.depth == depth)),
                _ => {}
            }
        }
        // `drop(name)` releases a named guard early.
        if t.kind == TokenKind::Ident
            && t.text == "drop"
            && punct_at(toks, i + 1, "(")
            && toks.get(i + 2).is_some_and(|n| n.kind == TokenKind::Ident)
            && punct_at(toks, i + 3, ")")
        {
            let victim = &toks[i + 2].text;
            guards.retain(|g| g.name.as_deref() != Some(victim.as_str()));
            continue;
        }
        // Method calls: `.lock(` acquisitions and `.send(`-family
        // blocking operations.
        if t.kind != TokenKind::Punct || t.text != "." {
            continue;
        }
        let Some(name_tok) = toks.get(i + 1).filter(|n| n.kind == TokenKind::Ident) else {
            continue;
        };
        if !punct_at(toks, i + 2, "(") {
            continue;
        }
        if name_tok.text == "lock" {
            let field = receiver_ident(toks, i);
            let Some((rank, class)) = field.as_deref().and_then(class_of) else { continue };
            for held in &guards {
                if held.rank >= rank {
                    let relation = if held.rank == rank {
                        "re-acquires the already-held".to_string()
                    } else {
                        format!("is declared before the held `{}` lock and must be taken first; this", held.class)
                    };
                    out.report(
                        rel,
                        lexed,
                        "lock-order",
                        name_tok.line,
                        &format!(
                            "`{symbol}` acquires the `{class}` lock which {relation} `{}` class — \
                             hierarchy is {}",
                            held.class,
                            hierarchy_order(class_of),
                        ),
                    );
                }
            }
            // A guard consumed in-expression (`…lock().unwrap().len()`)
            // is a temporary whatever the `let` binds; only an
            // unconsumed chain makes the binding a live guard.
            let binding = if guard_consumed(toks, i + 2) {
                None
            } else {
                let_binding(toks, lo, i)
            };
            guards.push(Guard {
                rank,
                class,
                transient: binding.is_none(),
                name: binding,
                depth,
            });
        } else if BLOCKING_CALLS.contains(&name_tok.text.as_str()) {
            if let Some(held) = guards.first() {
                out.report(
                    rel,
                    lexed,
                    "lock-across-blocking",
                    name_tok.line,
                    &format!(
                        "`{symbol}` calls blocking `.{}()` while holding the `{}` lock; \
                         drop the guard (or narrow its scope) before blocking",
                        name_tok.text, held.class
                    ),
                );
            }
        }
    }
}

/// Renders the declared order for messages (`queue → slot → metrics`).
fn hierarchy_order(class_of: &dyn Fn(&str) -> Option<(usize, String)>) -> String {
    // The hierarchy is reachable only through `class_of`; probe the
    // known classes in LOCK_HIERARCHY order as a fallback for custom
    // fixture hierarchies this just prints less nicely.
    let mut names: Vec<&str> = Vec::new();
    for (class, fields) in LOCK_HIERARCHY {
        if fields.iter().any(|f| class_of(f).is_some()) {
            names.push(class);
        }
    }
    if names.is_empty() {
        "the declared LOCK_HIERARCHY".to_string()
    } else {
        names.join(" → ")
    }
}

/// Whether the chain continues past the `.lock()` call (whose opening
/// paren is at `open`) with anything other than the poison adapters
/// (`unwrap` / `expect` / `unwrap_or_else`) — if so, the guard is a
/// consumed temporary, not something the statement's `let` binds.
fn guard_consumed(toks: &[Token], open: usize) -> bool {
    let mut k = match close_paren(toks, open) {
        Some(c) => c + 1,
        None => return false,
    };
    loop {
        let chained = toks.get(k).is_some_and(|t| t.kind == TokenKind::Punct && t.text == ".")
            && toks.get(k + 1).is_some_and(|t| t.kind == TokenKind::Ident)
            && toks.get(k + 2).is_some_and(|t| t.kind == TokenKind::Punct && t.text == "(");
        if !chained {
            return false;
        }
        if !matches!(toks[k + 1].text.as_str(), "unwrap" | "expect" | "unwrap_or_else") {
            return true;
        }
        k = match close_paren(toks, k + 2) {
            Some(c) => c + 1,
            None => return false,
        };
    }
}

/// Index of the `)` matching the `(` at `open`.
fn close_paren(toks: &[Token], open: usize) -> Option<usize> {
    let mut depth = 0i32;
    for (off, t) in toks[open..].iter().enumerate() {
        if t.kind == TokenKind::Punct {
            match t.text.as_str() {
                "(" => depth += 1,
                ")" => {
                    depth -= 1;
                    if depth == 0 {
                        return Some(open + off);
                    }
                }
                _ => {}
            }
        }
    }
    None
}

/// The identifier immediately before the `.` at `dot` (the lock's
/// receiver field), if any.
fn receiver_ident(toks: &[Token], dot: usize) -> Option<String> {
    let prev = dot.checked_sub(1)?;
    let p = &toks[prev];
    (p.kind == TokenKind::Ident).then(|| p.text.clone())
}

/// Walks back from the `.lock` at `dot` to its statement start and
/// returns the `let` binding name, if the acquisition is `let`-bound.
/// The statement start is the nearest `;`, `{`, or `}` behind us.
fn let_binding(toks: &[Token], lo: usize, dot: usize) -> Option<String> {
    let mut k = dot;
    while k > lo {
        k -= 1;
        let t = &toks[k];
        if t.kind == TokenKind::Punct && matches!(t.text.as_str(), ";" | "{" | "}") {
            break;
        }
    }
    // Scan forward for `let [mut] name`.
    for j in k..dot {
        if toks[j].kind == TokenKind::Ident && toks[j].text == "let" {
            let mut n = j + 1;
            if toks.get(n).is_some_and(|t| t.kind == TokenKind::Ident && t.text == "mut") {
                n += 1;
            }
            return toks
                .get(n)
                .filter(|t| t.kind == TokenKind::Ident)
                .map(|t| t.text.clone());
        }
    }
    None
}

fn punct_at(toks: &[Token], i: usize, text: &str) -> bool {
    toks.get(i).is_some_and(|t| t.kind == TokenKind::Punct && t.text == text)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::items::parse_items;
    use crate::lexer::lex;

    fn run(src: &str) -> Vec<(usize, String)> {
        let lexed = lex(src);
        let items = parse_items(&lexed);
        let out = check_file("crates/serve/src/x.rs", &lexed, &items, LOCK_HIERARCHY);
        out.findings.into_iter().map(|f| (f.line, f.rule)).collect()
    }

    #[test]
    fn hierarchy_order_is_enforced() {
        // metrics before queue: out of order.
        let bad = "fn f(&self) {\n    let m = self.metrics.lock().unwrap();\n    let q = self.queue.lock().unwrap();\n}";
        assert_eq!(run(bad), vec![(3, "lock-order".to_string())]);
        // queue before metrics: declared order, clean.
        let good = "fn f(&self) {\n    let q = self.queue.lock().unwrap();\n    let m = self.metrics.lock().unwrap();\n}";
        assert!(run(good).is_empty());
    }

    #[test]
    fn same_class_reentry_is_a_self_deadlock() {
        let src = "fn f(&self) {\n    let a = self.queue.lock().unwrap();\n    let b = self.queue.lock().unwrap();\n}";
        assert_eq!(run(src), vec![(3, "lock-order".to_string())]);
    }

    #[test]
    fn guard_scope_ends_at_brace_or_drop() {
        let scoped = "fn f(&self) {\n    { let m = self.metrics.lock().unwrap(); }\n    let q = self.queue.lock().unwrap();\n}";
        assert!(run(scoped).is_empty(), "brace-scoped guard released before queue");
        let dropped = "fn f(&self) {\n    let m = self.metrics.lock().unwrap();\n    drop(m);\n    let q = self.queue.lock().unwrap();\n}";
        assert!(run(dropped).is_empty(), "drop(guard) releases early");
    }

    #[test]
    fn blocking_call_under_guard_fires() {
        let src = "fn f(&self, tx: &Sender<u8>) {\n    let q = self.queue.lock().unwrap();\n    tx.send(1).ok();\n}";
        assert_eq!(run(src), vec![(3, "lock-across-blocking".to_string())]);
        let ok = "fn f(&self, tx: &Sender<u8>) {\n    { let q = self.queue.lock().unwrap(); }\n    tx.send(1).ok();\n}";
        assert!(run(ok).is_empty());
    }

    #[test]
    fn condvar_wait_is_not_blocking() {
        let src = "fn f(&self) {\n    let mut q = self.queue.lock().unwrap();\n    q = self.available.wait(q).unwrap();\n}";
        assert!(run(src).is_empty(), "Condvar::wait releases the guard it is given");
    }

    #[test]
    fn transient_guard_dies_at_statement_end() {
        let src = "fn f(&self) -> usize {\n    let n = self.queue.lock().unwrap().len();\n    self.tx.send(n).ok();\n    n\n}";
        assert!(run(src).is_empty(), "unbound guard is transient: dead at the `;`");
    }

    #[test]
    fn unclassified_receivers_do_not_participate() {
        let src = "fn f(&self) {\n    let w = self.workers.lock().unwrap();\n    self.tx.send(1).ok();\n}";
        assert!(run(src).is_empty());
    }

    #[test]
    fn allow_comment_suppresses() {
        let src = "fn f(&self, tx: &Sender<u8>) {\n    let q = self.queue.lock().unwrap();\n    tx.send(1).ok(); // lint: allow(lock-across-blocking)\n}";
        let lexed = lex(src);
        let items = parse_items(&lexed);
        let out = check_file("crates/serve/src/x.rs", &lexed, &items, LOCK_HIERARCHY);
        assert!(out.findings.is_empty());
        assert_eq!(out.suppressed, 1);
        assert_eq!(out.used_allows, vec![(3, "lock-across-blocking".to_string())]);
    }
}
