//! A name-resolution-approximate intra-workspace call graph.
//!
//! Nodes are the `fn` items [`crate::items`] extracted from every
//! scanned file; edges come from three call shapes found inside fn
//! bodies:
//!
//! * `name(..)` — a plain call, linked to every same-named free fn;
//! * `Type::name(..)` — a qualified call, linked to the matching
//!   `Type::name` symbols (`Self::` resolves within the caller's own
//!   impl type), falling back to free fns when the qualifier is a
//!   module path rather than a type;
//! * `.name(..)` — a method call, linked to every impl method with
//!   that name unless the name is in [`COMMON_METHODS`] (ubiquitous
//!   std names whose edges would connect everything to everything).
//!
//! "Approximate" is a design point, not an apology: with no type
//! inference, a shadowed or overloaded name links to **all** its
//! definitions, which over-approximates reachability — exactly the
//! conservative direction a panic-reachability rule wants (it may
//! flag too much, never too little). The shadowed-name unit test
//! below pins this behaviour.

use crate::items::{Item, ItemKind};
use crate::lexer::{LexedFile, TokenKind};
use std::collections::{BTreeMap, BTreeSet};

/// One analyzed source file: its path, tokens, and extracted items.
/// Built once per file by the driver and shared by every item-graph
/// rule family.
#[derive(Debug)]
pub struct SourceUnit {
    /// Workspace-relative `/`-separated path.
    pub rel: String,
    /// The lexed token stream.
    pub lexed: LexedFile,
    /// Items extracted from the token stream.
    pub items: Vec<Item>,
    /// Whether the file lives under a `tests/` directory (test code is
    /// neither a reachability root nor a panic-reach target).
    pub in_tests_dir: bool,
}

impl SourceUnit {
    /// Lexes and parses one file into a unit.
    pub fn build(rel: &str, source: &str) -> Self {
        let lexed = crate::lexer::lex(source);
        let items = crate::items::parse_items(&lexed);
        let in_tests_dir = rel.contains("/tests/") || rel.starts_with("tests/");
        Self { rel: rel.to_string(), lexed, items, in_tests_dir }
    }
}

/// One function node in the graph.
#[derive(Debug)]
pub struct FnNode {
    /// Index of the owning [`SourceUnit`].
    pub unit: usize,
    /// Index of the fn's [`Item`] within that unit.
    pub item: usize,
    /// The fn's qualified symbol (`Type::name` or bare name).
    pub symbol: String,
    /// The fn's bare name.
    pub name: String,
    /// Whether the fn is test code (a `#[cfg(test)]` region or a
    /// `tests/` directory file).
    pub in_test: bool,
}

/// Method names too common to resolve: linking every `.len()` call to
/// every `len` definition would connect the whole workspace. Calls to
/// these names simply produce no edge — a documented approximation
/// hole (std methods dominate these names anyway).
pub const COMMON_METHODS: &[&str] = &[
    "as_bytes", "as_mut", "as_ref", "as_slice", "as_str", "borrow", "borrow_mut", "clone",
    "cloned", "cmp", "collect", "contains", "copied", "default", "drain", "drop", "entry", "eq",
    "extend", "filter", "flush", "fmt", "from", "get", "get_mut", "hash", "insert", "into",
    "into_iter", "is_empty", "iter", "iter_mut", "join", "len", "lock", "map", "max", "min",
    "new", "next", "parse", "pop", "push", "read", "recv", "remove", "retain", "rev", "send",
    "sort", "spawn", "split", "sum", "take", "to_owned", "to_string", "to_vec", "trim",
    "unwrap", "unwrap_or", "wait", "write", "zip",
];

/// The call graph over every fn in a set of [`SourceUnit`]s.
#[derive(Debug)]
pub struct CallGraph {
    /// All fn nodes, in (unit, item) order.
    pub nodes: Vec<FnNode>,
    /// Adjacency: `edges[i]` is the set of node indices `i` may call.
    pub edges: Vec<BTreeSet<usize>>,
}

impl CallGraph {
    /// Builds the graph: one node per fn item, edges from the three
    /// call shapes in the module docs.
    pub fn build(units: &[SourceUnit]) -> Self {
        let mut nodes = Vec::new();
        for (u, unit) in units.iter().enumerate() {
            for (ix, it) in unit.items.iter().enumerate() {
                if it.kind == ItemKind::Fn {
                    nodes.push(FnNode {
                        unit: u,
                        item: ix,
                        symbol: it.symbol.clone(),
                        name: it.name.clone(),
                        in_test: it.in_test || unit.in_tests_dir,
                    });
                }
            }
        }

        // Name indices over non-test definitions (test helpers are
        // never call targets on production paths).
        let mut free_by_name: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
        let mut methods_by_name: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
        let mut by_symbol: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
        for (n, node) in nodes.iter().enumerate() {
            if node.in_test {
                continue;
            }
            by_symbol.entry(node.symbol.as_str()).or_default().push(n);
            if node.symbol.contains("::") {
                methods_by_name.entry(node.name.as_str()).or_default().push(n);
            } else {
                free_by_name.entry(node.name.as_str()).or_default().push(n);
            }
        }

        let mut edges = vec![BTreeSet::new(); nodes.len()];
        for (n, node) in nodes.iter().enumerate() {
            let unit = &units[node.unit];
            let it = &unit.items[node.item];
            let Some((lo, hi)) = it.body else { continue };
            let toks = &unit.lexed.tokens;
            // The caller's impl type, for `Self::` resolution.
            let self_ty = node.symbol.split_once("::").map(|(ty, _)| ty);
            for i in lo..=hi.min(toks.len().saturating_sub(1)) {
                let t = &toks[i];
                if t.kind != TokenKind::Ident || !punct_at(toks, i + 1, "(") {
                    continue;
                }
                let name = t.text.as_str();
                if is_keyword(name) {
                    continue;
                }
                // Skip the name in a nested `fn name(` declaration.
                if i > 0 && toks[i - 1].kind == TokenKind::Ident && toks[i - 1].text == "fn" {
                    continue;
                }
                let prev = i.checked_sub(1).map(|p| &toks[p]);
                let targets: Vec<usize> = match prev {
                    Some(p) if p.kind == TokenKind::Punct && p.text == "." => {
                        if COMMON_METHODS.contains(&name) {
                            continue;
                        }
                        methods_by_name.get(name).cloned().unwrap_or_default()
                    }
                    Some(p) if p.kind == TokenKind::Punct && p.text == "::" => {
                        let Some(q) = i.checked_sub(2).map(|q| &toks[q]) else { continue };
                        if q.kind != TokenKind::Ident {
                            continue;
                        }
                        let qualifier = if q.text == "Self" {
                            match self_ty {
                                Some(ty) => ty,
                                None => continue,
                            }
                        } else {
                            q.text.as_str()
                        };
                        let symbol = format!("{qualifier}::{name}");
                        match by_symbol.get(symbol.as_str()) {
                            Some(v) => v.clone(),
                            // Module-qualified free fn (`manifest::run(..)`).
                            None => free_by_name.get(name).cloned().unwrap_or_default(),
                        }
                    }
                    _ => free_by_name.get(name).cloned().unwrap_or_default(),
                };
                for target in targets {
                    if target != n {
                        edges[n].insert(target);
                    }
                }
            }
        }
        Self { nodes, edges }
    }

    /// Node indices whose `(file, symbol)` matches an entry — the
    /// reachability roots.
    pub fn roots(&self, units: &[SourceUnit], entries: &[(&str, &str)]) -> Vec<usize> {
        self.nodes
            .iter()
            .enumerate()
            .filter(|(_, node)| {
                entries
                    .iter()
                    .any(|(file, symbol)| units[node.unit].rel == *file && node.symbol == *symbol)
            })
            .map(|(n, _)| n)
            .collect()
    }

    /// BFS from `roots`, skipping test nodes. Returns, per reached
    /// node, the root it was first reached from (roots map to
    /// themselves).
    pub fn reachable_from(&self, roots: &[usize]) -> BTreeMap<usize, usize> {
        let mut origin = BTreeMap::new();
        let mut queue = std::collections::VecDeque::new();
        for &r in roots {
            if !self.nodes[r].in_test && origin.insert(r, r).is_none() {
                queue.push_back(r);
            }
        }
        while let Some(n) = queue.pop_front() {
            let root = origin[&n];
            for &next in &self.edges[n] {
                if self.nodes[next].in_test {
                    continue;
                }
                if let std::collections::btree_map::Entry::Vacant(e) = origin.entry(next) {
                    e.insert(root);
                    queue.push_back(next);
                }
            }
        }
        origin
    }
}

fn punct_at(toks: &[crate::lexer::Token], i: usize, text: &str) -> bool {
    toks.get(i).is_some_and(|t| t.kind == TokenKind::Punct && t.text == text)
}

fn is_keyword(text: &str) -> bool {
    matches!(
        text,
        "if" | "while" | "for" | "match" | "return" | "loop" | "fn" | "let" | "mut" | "move"
            | "in" | "as" | "else" | "break" | "continue" | "unsafe" | "pub" | "where" | "impl"
            | "dyn" | "ref" | "use" | "mod" | "struct" | "enum" | "trait" | "type" | "static"
            | "const" | "crate" | "super" | "self"
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn graph(files: &[(&str, &str)]) -> (Vec<SourceUnit>, CallGraph) {
        let units: Vec<SourceUnit> =
            files.iter().map(|(rel, src)| SourceUnit::build(rel, src)).collect();
        let g = CallGraph::build(&units);
        (units, g)
    }

    fn node(g: &CallGraph, symbol: &str) -> usize {
        g.nodes.iter().position(|n| n.symbol == symbol).unwrap()
    }

    #[test]
    fn free_and_qualified_calls_create_edges() {
        let (_, g) = graph(&[(
            "crates/x/src/lib.rs",
            "fn a() { b(); Helper::run(); }\nfn b() {}\nstruct Helper;\nimpl Helper { fn run() { b(); } }",
        )]);
        let a = node(&g, "a");
        let b = node(&g, "b");
        let run = node(&g, "Helper::run");
        assert!(g.edges[a].contains(&b));
        assert!(g.edges[a].contains(&run));
        assert!(g.edges[run].contains(&b));
    }

    #[test]
    fn method_calls_resolve_across_files_but_common_names_do_not() {
        let (_, g) = graph(&[
            ("crates/x/src/a.rs", "fn caller(s: &Slot) { s.refresh(); s.len(); }"),
            (
                "crates/x/src/b.rs",
                "struct Slot;\nimpl Slot { fn refresh(&self) {} fn len(&self) -> usize { 0 } }",
            ),
        ]);
        let caller = node(&g, "caller");
        assert!(g.edges[caller].contains(&node(&g, "Slot::refresh")));
        assert!(
            !g.edges[caller].contains(&node(&g, "Slot::len")),
            "`.len()` is a COMMON_METHODS name: no edge"
        );
    }

    #[test]
    fn self_calls_resolve_within_the_impl_type() {
        let (_, g) = graph(&[(
            "crates/x/src/lib.rs",
            "struct A; struct B;\nimpl A { fn go() { Self::helper(); } fn helper() {} }\nimpl B { fn helper() {} }",
        )]);
        let go = node(&g, "A::go");
        assert!(g.edges[go].contains(&node(&g, "A::helper")));
        assert!(!g.edges[go].contains(&node(&g, "B::helper")));
    }

    #[test]
    fn shadowed_fn_names_link_to_all_definitions() {
        // Two files each define `compute`; a call by bare name links to
        // both — reachability over-approximates on purpose, so a panic
        // in either definition is caught.
        let (_, g) = graph(&[
            ("crates/x/src/a.rs", "fn entry() { compute(); }\nfn compute() {}"),
            ("crates/y/src/b.rs", "fn compute() { helper(); }\nfn helper() {}"),
        ]);
        let entry = node(&g, "entry");
        let a_compute = g
            .nodes
            .iter()
            .position(|n| n.symbol == "compute" && n.unit == 0)
            .unwrap();
        let b_compute = g
            .nodes
            .iter()
            .position(|n| n.symbol == "compute" && n.unit == 1)
            .unwrap();
        assert!(g.edges[entry].contains(&a_compute));
        assert!(
            g.edges[entry].contains(&b_compute),
            "shadowed names over-approximate: both definitions are targets"
        );
        // And transitively, helper is reachable from entry.
        let reached = g.reachable_from(&[entry]);
        assert!(reached.contains_key(&node(&g, "helper")));
        assert_eq!(reached[&node(&g, "helper")], entry, "origin points at the root");
    }

    #[test]
    fn test_code_is_excluded_from_nodes_reached_and_targets() {
        let (units, g) = graph(&[
            (
                "crates/x/src/lib.rs",
                "fn entry() { helper(); }\nfn helper() {}\n#[cfg(test)]\nmod tests {\n    fn helper() { panic!() }\n    fn t() { entry(); }\n}",
            ),
        ]);
        let entry = node(&g, "entry");
        let reached = g.reachable_from(&[entry]);
        // Only the production helper is reached, not the test shadow.
        let reached_syms: Vec<&str> =
            reached.keys().map(|&n| g.nodes[n].symbol.as_str()).collect();
        assert_eq!(reached_syms.len(), 2, "{reached_syms:?}");
        assert!(g.roots(&units, &[("crates/x/src/lib.rs", "entry")]).len() == 1);
    }
}
