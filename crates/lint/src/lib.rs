//! # groupsa-lint
//!
//! A std-only, in-tree static analyzer that mechanically enforces the
//! invariants the reproduction's guarantees rest on (DESIGN.md §11):
//!
//! * **determinism** — no ambient time, ambient entropy, or
//!   randomized-order hash containers in the numeric crates whose
//!   outputs must be bit-identical across runs and thread counts —
//!   and, workspace-wide, ambient clock reads confined to the timing
//!   modules listed in [`rules::CLOCK_SCOPES`];
//! * **panic-safety** — no `unwrap`/`expect`/`panic!`/unjustified
//!   indexing on the serve request paths (typed errors only);
//! * **hermeticity** — no `extern crate`, no `use` roots outside the
//!   workspace, and every `Cargo.toml` dependency resolving to an
//!   in-tree path (subsuming the hermeticity-guard test);
//! * **float hygiene** — no direct `==`/`!=` against float literals
//!   outside tests.
//!
//! Per the hermeticity policy the analyzer has no external parser: a
//! small comment/string/attribute-aware lexer ([`lexer`]) feeds a rule
//! engine ([`rules`]), manifests get a dedicated line-oriented checker
//! ([`manifest`]), and findings serialise through `groupsa-json`
//! ([`report`]). Escape hatches are per-line `// lint: allow(<rule>)`
//! comments (`# lint: allow(cargo-dep)` in TOML) and the per-rule file
//! allowlist in [`rules::ALLOWED_FILES`].

#![warn(missing_docs)]

pub mod atomics;
pub mod callgraph;
pub mod items;
pub mod lexer;
pub mod locks;
pub mod manifest;
pub mod report;
pub mod reach;
pub mod rules;

pub use report::{Finding, PassTiming, Report, REPORT_VERSION};
pub use rules::{
    in_clock_scope, in_panic_scope, Analyzer, RuleOutcome, ScopeSpec, ALLOWED_FILES,
    CLOCK_SCOPES, PANIC_SCOPES, RULES,
};

use callgraph::{CallGraph, SourceUnit};
use std::path::{Path, PathBuf};
use std::time::Instant;

/// Directories never scanned: build output, VCS internals, and the
/// lint fixtures (which contain violations *on purpose*).
const SKIP_DIRS: &[&str] = &["target", ".git"];

/// Path fragment that marks intentional-violation fixture trees.
const FIXTURE_MARKER: &str = "tests/fixtures";

/// Locates the workspace root by walking up from `start` to the first
/// directory whose `Cargo.toml` declares `[workspace]`.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start.to_path_buf());
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(d);
            }
        }
        dir = d.parent().map(Path::to_path_buf);
    }
    None
}

/// Collects workspace-relative paths (`/`-separated, sorted) of every
/// `.rs` file and `Cargo.toml` under `root`, skipping [`SKIP_DIRS`]
/// and fixture trees.
pub fn collect_files(root: &Path) -> std::io::Result<Vec<String>> {
    let mut out = Vec::new();
    walk(root, root, &mut out)?;
    out.sort();
    Ok(out)
}

fn walk(root: &Path, dir: &Path, out: &mut Vec<String>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name().to_string_lossy().into_owned();
        if path.is_dir() {
            if SKIP_DIRS.contains(&name.as_str()) || name.starts_with('.') {
                continue;
            }
            walk(root, &path, out)?;
        } else if name == "Cargo.toml" || name.ends_with(".rs") {
            let rel = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .components()
                .map(|c| c.as_os_str().to_string_lossy().into_owned())
                .collect::<Vec<_>>()
                .join("/");
            if rel.contains(FIXTURE_MARKER) {
                continue;
            }
            out.push(rel);
        }
    }
    Ok(())
}

/// Runs the full analysis over a workspace tree and assembles the
/// [`Report`]. IO errors on individual files become findings (a file
/// the analyzer cannot read cannot be declared clean).
///
/// Pass structure (each timed into [`Report::timings`]):
///
/// 1. **manifests** — package names (legitimate `use` roots), the root
///    `[workspace.dependencies]` keys, and the `cargo-dep` rule;
/// 2. **lex+parse** — every `.rs` file becomes a [`SourceUnit`]
///    (tokens + items), shared by all later passes;
/// 3. **rules** — the original token-walk families;
/// 4. **atomics** — the [`atomics::ATOMIC_SITES`] manifest audit and
///    `relaxed-publish`;
/// 5. **locks** — hierarchy + held-across-blocking in
///    [`locks::LOCK_SCOPE`];
/// 6. **panic-reach** — call-graph reachability from
///    [`reach::REQUEST_ENTRY_POINTS`];
/// 7. **dead-allow** — allow comments none of the above used.
pub fn run(root: &Path) -> std::io::Result<Report> {
    let files = collect_files(root)?;
    let mut findings = Vec::new();
    let mut suppressed = 0;
    let mut timings = Vec::new();

    // Pass 1 — manifests.
    let t0 = Instant::now();
    let mut package_names = Vec::new();
    let mut workspace_dep_keys = std::collections::BTreeSet::new();
    for rel in files.iter().filter(|f| f.ends_with("Cargo.toml")) {
        if let Ok(text) = std::fs::read_to_string(root.join(rel)) {
            let info = manifest::manifest_info(&text);
            package_names.extend(info.package_name);
            if rel == "Cargo.toml" {
                workspace_dep_keys = info.workspace_dep_keys;
            }
        }
    }
    let analyzer = Analyzer::new(package_names);
    for rel in files.iter().filter(|f| f.ends_with("Cargo.toml")) {
        match std::fs::read_to_string(root.join(rel)) {
            Ok(text) => {
                let (mut f, s) = manifest::check_manifest(rel, &text, root, &workspace_dep_keys);
                findings.append(&mut f);
                suppressed += s;
            }
            Err(e) => findings.push(io_finding(rel, &e)),
        }
    }
    timings.push(pass_timing("manifests", t0));

    // Pass 2 — lex + parse every source file once.
    let t0 = Instant::now();
    let mut units: Vec<SourceUnit> = Vec::new();
    for rel in files.iter().filter(|f| f.ends_with(".rs")) {
        match std::fs::read_to_string(root.join(rel)) {
            Ok(text) => units.push(SourceUnit::build(rel, &text)),
            Err(e) => findings.push(io_finding(rel, &e)),
        }
    }
    timings.push(pass_timing("lex+parse", t0));

    // Per-file (line, rule) suppression events, pooled across passes
    // for the dead-allow rule.
    let mut used_allows: Vec<Vec<(usize, String)>> = vec![Vec::new(); units.len()];
    fn fold(
        findings: &mut Vec<Finding>,
        suppressed: &mut usize,
        acc: &mut Vec<(usize, String)>,
        out: RuleOutcome,
    ) {
        findings.extend(out.findings);
        *suppressed += out.suppressed;
        acc.extend(out.used_allows);
    }

    // Pass 3 — the original token-walk rule families.
    let t0 = Instant::now();
    for (u, unit) in units.iter().enumerate() {
        let out = analyzer.analyze_lexed(&unit.rel, &unit.lexed);
        fold(&mut findings, &mut suppressed, &mut used_allows[u], out);
    }
    timings.push(pass_timing("rules", t0));

    // Pass 4 — atomics-ordering audit.
    let t0 = Instant::now();
    let mut matched = std::collections::BTreeSet::new();
    for (u, unit) in units.iter().enumerate() {
        if unit.in_tests_dir {
            continue;
        }
        let (out, file_matched) = atomics::check_file(
            &unit.rel,
            &unit.lexed,
            &unit.items,
            atomics::ATOMIC_SITES,
            atomics::PUBLISH_FIELDS,
        );
        matched.extend(file_matched);
        fold(&mut findings, &mut suppressed, &mut used_allows[u], out);
    }
    findings.extend(atomics::stale_manifest_findings(atomics::ATOMIC_SITES, &matched));
    timings.push(pass_timing("atomics", t0));

    // Pass 5 — lock discipline in the serve crate.
    let t0 = Instant::now();
    for (u, unit) in units.iter().enumerate() {
        if unit.in_tests_dir || !locks::LOCK_SCOPE.contains(&unit.rel) {
            continue;
        }
        let out = locks::check_file(&unit.rel, &unit.lexed, &unit.items, locks::LOCK_HIERARCHY);
        fold(&mut findings, &mut suppressed, &mut used_allows[u], out);
    }
    timings.push(pass_timing("locks", t0));

    // Pass 6 — panic reachability from the serve entry points.
    let t0 = Instant::now();
    let graph = CallGraph::build(&units);
    let entries: Vec<(&str, &str)> = reach::REQUEST_ENTRY_POINTS
        .iter()
        .map(|(f, s, _)| (*f, *s))
        .collect();
    let (out, reach_used) = reach::check(&units, &graph, &entries, &|rel| {
        in_panic_scope(rel) || analyzer.file_allowed("panic-reach", rel)
    });
    for (u, line) in reach_used {
        used_allows[u].push((line, "panic-reach".to_string()));
    }
    findings.extend(out.findings);
    suppressed += out.suppressed;
    timings.push(pass_timing("panic-reach", t0));

    // Pass 7 — dead allow comments, judged against every pass above.
    let t0 = Instant::now();
    for (u, unit) in units.iter().enumerate() {
        let out = rules::dead_allow_findings(&unit.rel, &unit.lexed, &used_allows[u]);
        findings.extend(out.findings);
        suppressed += out.suppressed;
    }
    timings.push(pass_timing("dead-allow", t0));

    Ok(Report::new(files.len(), suppressed, findings).with_timings(timings))
}

fn io_finding(rel: &str, e: &std::io::Error) -> Finding {
    Finding {
        file: rel.to_string(),
        line: 0,
        rule: "io".to_string(),
        message: format!("could not read file: {e}"),
    }
}

fn pass_timing(pass: &str, since: Instant) -> PassTiming {
    PassTiming { pass: pass.to_string(), micros: since.elapsed().as_micros() as u64 }
}

/// Scans the tree and renders suggested [`atomics::ATOMIC_SITES`] rows
/// (one per distinct unmanifested `(file, field, op, ordering)`) ready
/// to paste into `crates/lint/src/atomics.rs` — justification left as
/// a TODO the `atomic-manifest` rule will reject until written.
pub fn dump_atomic_suggestions(root: &Path) -> std::io::Result<String> {
    let files = collect_files(root)?;
    let mut rows = std::collections::BTreeSet::new();
    for rel in files.iter().filter(|f| f.ends_with(".rs")) {
        if rel.contains("/tests/") || rel.starts_with("tests/") {
            continue;
        }
        let text = std::fs::read_to_string(root.join(rel))?;
        let unit = SourceUnit::build(rel, &text);
        for site in atomics::find_sites(&unit.lexed, &unit.items) {
            let manifested = atomics::ATOMIC_SITES.iter().any(|(f, sym, op, ord, _)| {
                *f == rel.as_str()
                    && *sym == site.field
                    && *op == site.op
                    && *ord == site.ordering
            });
            if !manifested {
                rows.insert(format!(
                    "    (\"{}\", \"{}\", \"{}\", \"{}\", \"TODO: justify\"),",
                    rel, site.field, site.op, site.ordering
                ));
            }
        }
    }
    Ok(rows.into_iter().collect::<Vec<_>>().join("\n"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn repo_root() -> PathBuf {
        // crates/lint → workspace root.
        find_workspace_root(Path::new(env!("CARGO_MANIFEST_DIR"))).unwrap()
    }

    #[test]
    fn workspace_root_is_found_from_a_crate_dir() {
        let root = repo_root();
        assert!(root.join("Cargo.toml").is_file());
        assert!(root.join("crates/lint").is_dir());
    }

    #[test]
    fn collect_skips_target_and_fixtures() {
        let files = collect_files(&repo_root()).unwrap();
        assert!(files.iter().any(|f| f == "crates/lint/src/lib.rs"));
        assert!(files.iter().any(|f| f == "Cargo.toml"));
        assert!(!files.iter().any(|f| f.starts_with("target/")));
        assert!(!files.iter().any(|f| f.contains("tests/fixtures")));
        let mut sorted = files.clone();
        sorted.sort();
        assert_eq!(files, sorted, "scan order must be deterministic");
    }
}
