//! # groupsa-lint
//!
//! A std-only, in-tree static analyzer that mechanically enforces the
//! invariants the reproduction's guarantees rest on (DESIGN.md §11):
//!
//! * **determinism** — no ambient time, ambient entropy, or
//!   randomized-order hash containers in the numeric crates whose
//!   outputs must be bit-identical across runs and thread counts —
//!   and, workspace-wide, ambient clock reads confined to the timing
//!   modules listed in [`rules::CLOCK_SCOPES`];
//! * **panic-safety** — no `unwrap`/`expect`/`panic!`/unjustified
//!   indexing on the serve request paths (typed errors only);
//! * **hermeticity** — no `extern crate`, no `use` roots outside the
//!   workspace, and every `Cargo.toml` dependency resolving to an
//!   in-tree path (subsuming the hermeticity-guard test);
//! * **float hygiene** — no direct `==`/`!=` against float literals
//!   outside tests.
//!
//! Per the hermeticity policy the analyzer has no external parser: a
//! small comment/string/attribute-aware lexer ([`lexer`]) feeds a rule
//! engine ([`rules`]), manifests get a dedicated line-oriented checker
//! ([`manifest`]), and findings serialise through `groupsa-json`
//! ([`report`]). Escape hatches are per-line `// lint: allow(<rule>)`
//! comments (`# lint: allow(cargo-dep)` in TOML) and the per-rule file
//! allowlist in [`rules::ALLOWED_FILES`].

#![warn(missing_docs)]

pub mod lexer;
pub mod manifest;
pub mod report;
pub mod rules;

pub use report::{Finding, Report, REPORT_VERSION};
pub use rules::{in_clock_scope, in_panic_scope, Analyzer, ALLOWED_FILES, CLOCK_SCOPES, PANIC_SCOPES, RULES};

use std::path::{Path, PathBuf};

/// Directories never scanned: build output, VCS internals, and the
/// lint fixtures (which contain violations *on purpose*).
const SKIP_DIRS: &[&str] = &["target", ".git"];

/// Path fragment that marks intentional-violation fixture trees.
const FIXTURE_MARKER: &str = "tests/fixtures";

/// Locates the workspace root by walking up from `start` to the first
/// directory whose `Cargo.toml` declares `[workspace]`.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start.to_path_buf());
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(d);
            }
        }
        dir = d.parent().map(Path::to_path_buf);
    }
    None
}

/// Collects workspace-relative paths (`/`-separated, sorted) of every
/// `.rs` file and `Cargo.toml` under `root`, skipping [`SKIP_DIRS`]
/// and fixture trees.
pub fn collect_files(root: &Path) -> std::io::Result<Vec<String>> {
    let mut out = Vec::new();
    walk(root, root, &mut out)?;
    out.sort();
    Ok(out)
}

fn walk(root: &Path, dir: &Path, out: &mut Vec<String>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name().to_string_lossy().into_owned();
        if path.is_dir() {
            if SKIP_DIRS.contains(&name.as_str()) || name.starts_with('.') {
                continue;
            }
            walk(root, &path, out)?;
        } else if name == "Cargo.toml" || name.ends_with(".rs") {
            let rel = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .components()
                .map(|c| c.as_os_str().to_string_lossy().into_owned())
                .collect::<Vec<_>>()
                .join("/");
            if rel.contains(FIXTURE_MARKER) {
                continue;
            }
            out.push(rel);
        }
    }
    Ok(())
}

/// Runs the full analysis over a workspace tree and assembles the
/// [`Report`]. IO errors on individual files become findings (a file
/// the analyzer cannot read cannot be declared clean).
pub fn run(root: &Path) -> std::io::Result<Report> {
    let files = collect_files(root)?;

    // Pass 1 — manifests: package names (the legitimate `use` roots)
    // and the root [workspace.dependencies] keys.
    let mut package_names = Vec::new();
    let mut workspace_dep_keys = std::collections::BTreeSet::new();
    for rel in files.iter().filter(|f| f.ends_with("Cargo.toml")) {
        if let Ok(text) = std::fs::read_to_string(root.join(rel)) {
            let info = manifest::manifest_info(&text);
            package_names.extend(info.package_name);
            if rel == "Cargo.toml" {
                workspace_dep_keys = info.workspace_dep_keys;
            }
        }
    }
    let analyzer = Analyzer::new(package_names);

    // Pass 2 — rules.
    let mut findings = Vec::new();
    let mut suppressed = 0;
    for rel in &files {
        let text = match std::fs::read_to_string(root.join(rel)) {
            Ok(t) => t,
            Err(e) => {
                findings.push(Finding {
                    file: rel.clone(),
                    line: 0,
                    rule: "io".to_string(),
                    message: format!("could not read file: {e}"),
                });
                continue;
            }
        };
        let (mut f, s) = if rel.ends_with("Cargo.toml") {
            manifest::check_manifest(rel, &text, root, &workspace_dep_keys)
        } else {
            analyzer.analyze_source(rel, &text)
        };
        findings.append(&mut f);
        suppressed += s;
    }
    Ok(Report::new(files.len(), suppressed, findings))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn repo_root() -> PathBuf {
        // crates/lint → workspace root.
        find_workspace_root(Path::new(env!("CARGO_MANIFEST_DIR"))).unwrap()
    }

    #[test]
    fn workspace_root_is_found_from_a_crate_dir() {
        let root = repo_root();
        assert!(root.join("Cargo.toml").is_file());
        assert!(root.join("crates/lint").is_dir());
    }

    #[test]
    fn collect_skips_target_and_fixtures() {
        let files = collect_files(&repo_root()).unwrap();
        assert!(files.iter().any(|f| f == "crates/lint/src/lib.rs"));
        assert!(files.iter().any(|f| f == "Cargo.toml"));
        assert!(!files.iter().any(|f| f.starts_with("target/")));
        assert!(!files.iter().any(|f| f.contains("tests/fixtures")));
        let mut sorted = files.clone();
        sorted.sort();
        assert_eq!(files, sorted, "scan order must be deterministic");
    }
}
