//! Panic-reachability from the serve request entry points.
//!
//! The lexical `panic-path` rule covers the files *listed* in
//! [`crate::rules::PANIC_SCOPES`]; this family extends the guarantee
//! to everything those files *call*. Starting from the request entry
//! points ([`REQUEST_ENTRY_POINTS`]: the accept loop, the connection
//! handler, the submit paths, and the worker-thread body), a BFS over
//! the [`crate::callgraph`] marks every function a request can reach;
//! a `.unwrap()` / `.expect()` / `panic!`-family macro in a reached
//! function fires `panic-reach`, even when that function lives in a
//! crate the file-scope list never named — the exact gap that let a
//! helper panic take down a worker thread before PR 5's typed-error
//! sweep.
//!
//! Scope subtleties, all deliberate:
//!
//! * files already in the lexical panic scope are skipped — one panic
//!   site never fires two rules (`panic-path` owns those files, with
//!   its stricter indexing check);
//! * unjustified indexing is *not* flagged here — the numeric kernels
//!   this rule reaches index in hot loops under shapes validated at
//!   load time, and drowning the signal in thousands of index sites
//!   would kill the rule's value (the graph over-approximates, so the
//!   reached set is wide);
//! * `assert!` is not flagged either: an assert is a contract check
//!   that names its invariant, which is the documented alternative to
//!   silent UB for kernel preconditions;
//! * suppression is the usual `// lint: allow(panic-reach)` plus
//!   [`crate::rules::ALLOWED_FILES`] entries for files whose panics
//!   are load-bearing by design.

use crate::callgraph::{CallGraph, SourceUnit};
use crate::lexer::TokenKind;
use crate::rules::RuleOutcome;

/// Where requests enter the serve crate: `(file, symbol, role)`.
/// Reachability roots; anything these can call is request-path code.
pub const REQUEST_ENTRY_POINTS: &[(&str, &str, &str)] = &[
    ("crates/serve/src/server.rs", "run", "serve main: bind, export, accept"),
    ("crates/serve/src/server.rs", "run_with", "TCP accept loop — every connection starts here"),
    ("crates/serve/src/server.rs", "handle_connection", "per-connection reader + writer threads"),
    ("crates/serve/src/engine.rs", "Engine::submit", "synchronous request entry"),
    ("crates/serve/src/engine.rs", "Engine::submit_streamed", "pipelined request entry"),
    ("crates/serve/src/engine.rs", "worker_loop", "worker-thread body — runs every batch"),
];

/// Runs the reachability pass. `entries` are `(file, symbol)` roots;
/// `skip_file` exempts whole files (the lexical panic scope plus
/// `ALLOWED_FILES` at the workspace level; fixtures inject their
/// own). Findings carry the reached function and the root that
/// reaches it. `used_allows` pairs are `(unit index, line)`.
pub fn check(
    units: &[SourceUnit],
    graph: &CallGraph,
    entries: &[(&str, &str)],
    skip_file: &dyn Fn(&str) -> bool,
) -> (RuleOutcome, Vec<(usize, usize)>) {
    let mut out = RuleOutcome::default();
    let mut used: Vec<(usize, usize)> = Vec::new();
    let roots = graph.roots(units, entries);
    let reached = graph.reachable_from(&roots);
    for (&node, &root) in &reached {
        let n = &graph.nodes[node];
        let unit = &units[n.unit];
        if n.in_test || unit.in_tests_dir || skip_file(&unit.rel) {
            continue;
        }
        let root_node = &graph.nodes[root];
        let root_desc = format!(
            "{} ({})",
            root_node.symbol,
            units[root_node.unit].rel
        );
        let it = &unit.items[n.item];
        let Some((lo, hi)) = it.body else { continue };
        let toks = &unit.lexed.tokens;
        for i in lo..=hi.min(toks.len().saturating_sub(1)) {
            let t = &toks[i];
            let fired = if t.kind == TokenKind::Punct
                && t.text == "."
                && toks.get(i + 1).is_some_and(|x| {
                    x.kind == TokenKind::Ident && (x.text == "unwrap" || x.text == "expect")
                })
                && toks.get(i + 2).is_some_and(|x| x.kind == TokenKind::Punct && x.text == "(")
            {
                Some((toks[i + 1].line, format!(".{}()", toks[i + 1].text)))
            } else if t.kind == TokenKind::Ident
                && matches!(t.text.as_str(), "panic" | "unreachable" | "todo" | "unimplemented")
                && toks.get(i + 1).is_some_and(|x| x.kind == TokenKind::Punct && x.text == "!")
            {
                Some((t.line, format!("{}!", t.text)))
            } else {
                None
            };
            let Some((line, what)) = fired else { continue };
            if unit.lexed.is_allowed(line, "panic-reach") {
                out.suppressed += 1;
                out.used_allows.push((line, "panic-reach".to_string()));
                used.push((n.unit, line));
            } else {
                out.findings.push(crate::report::Finding {
                    file: unit.rel.clone(),
                    line,
                    rule: "panic-reach".to_string(),
                    message: format!(
                        "`{what}` in `{}` is reachable from serve entry `{root_desc}`; \
                         return a typed error or justify with `// lint: allow(panic-reach)`",
                        n.symbol
                    ),
                });
            }
        }
    }
    (out, used)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::callgraph::CallGraph;

    fn run(files: &[(&str, &str)], entries: &[(&str, &str)]) -> Vec<(String, usize, String)> {
        let units: Vec<SourceUnit> =
            files.iter().map(|(rel, src)| SourceUnit::build(rel, src)).collect();
        let graph = CallGraph::build(&units);
        let (out, _) = check(&units, &graph, entries, &|_| false);
        out.findings.into_iter().map(|f| (f.file, f.line, f.rule)).collect()
    }

    #[test]
    fn panic_in_a_reachable_helper_fires_across_files() {
        let fired = run(
            &[
                ("crates/s/src/engine.rs", "fn entry() { helper(); }"),
                ("crates/h/src/lib.rs", "fn helper() { inner() }\nfn inner() { maybe().unwrap(); }"),
                ("crates/h/src/other.rs", "fn unrelated() { maybe().unwrap(); }"),
            ],
            &[("crates/s/src/engine.rs", "entry")],
        );
        assert_eq!(
            fired,
            vec![("crates/h/src/lib.rs".to_string(), 2, "panic-reach".to_string())],
            "the reachable unwrap fires; the unreachable one does not"
        );
    }

    #[test]
    fn skip_file_exempts_the_lexical_panic_scope() {
        let files = [
            ("crates/s/src/engine.rs", "fn entry() { x().unwrap(); }"),
        ];
        let units: Vec<SourceUnit> =
            files.iter().map(|(rel, src)| SourceUnit::build(rel, src)).collect();
        let graph = CallGraph::build(&units);
        let (out, _) = check(
            &units,
            &graph,
            &[("crates/s/src/engine.rs", "entry")],
            &|rel| rel == "crates/s/src/engine.rs",
        );
        assert!(out.findings.is_empty(), "panic-path owns its own files");
    }
}
