//! A small Rust lexer for the rule engine.
//!
//! This is not a parser: it turns a `.rs` source file into a flat
//! stream of line-numbered tokens (identifiers, numbers, strings,
//! lifetimes, punctuation) with comments and string contents stripped
//! out, which is exactly the altitude the rules need — `Instant :: now`
//! is three tokens regardless of formatting, and a `HashMap` inside a
//! string literal or a doc comment is not a finding.
//!
//! Two comment shapes are load-bearing and therefore extracted rather
//! than discarded:
//!
//! * `// lint: allow(rule-a, rule-b)` — the per-line escape hatch. An
//!   allow comment suppresses matching findings on its own line; when
//!   the comment stands alone on a line it also covers the next line,
//!   so the justification can sit above the flagged statement.
//! * `// bounds: <why the index is in range>` — the justification the
//!   panic-safety indexing check accepts (same own-line/next-line
//!   reach as allow comments).
//!
//! Only line comments participate; block comments are skipped whole.

use std::collections::{BTreeMap, BTreeSet};

/// What kind of lexeme a [`Token`] is.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TokenKind {
    /// An identifier or keyword (`use`, `HashMap`, `unwrap`, …).
    Ident,
    /// A numeric literal (`3`, `0.5`, `1e-9`, `0xff`, `2f32`, …).
    Number,
    /// A string literal of any flavour (`"…"`, `r#"…"#`, `b"…"`).
    Str,
    /// A character literal (`'x'`, `'\n'`).
    Char,
    /// A lifetime (`'a`, `'static`).
    Lifetime,
    /// Punctuation; multi-character operators (`==`, `::`, `->`, …)
    /// arrive as one token.
    Punct,
}

/// One lexeme with its 1-based source line.
#[derive(Clone, Debug)]
pub struct Token {
    /// The kind of lexeme.
    pub kind: TokenKind,
    /// The lexeme text (empty for [`TokenKind::Str`] — contents are
    /// deliberately not retained).
    pub text: String,
    /// 1-based line the token starts on.
    pub line: usize,
}

/// One `// lint: allow(…)` comment as a unit: where it sits, which
/// lines it covers, and the rules it names. The per-line [`LexedFile::
/// allows`] map answers "is line L allowed for rule R?" fast; this
/// record keeps the comment's identity so the dead-allow rule can ask
/// the inverse question — "did anything this comment covers actually
/// fire?".
#[derive(Clone, Debug)]
pub struct AllowComment {
    /// 1-based line the comment itself sits on.
    pub line: usize,
    /// Lines the comment covers (its own line, plus the next line when
    /// it stands alone).
    pub covered: Vec<usize>,
    /// Rule names listed inside `allow(…)`, verbatim.
    pub rules: Vec<String>,
}

/// The lexed view of one source file.
#[derive(Debug, Default)]
pub struct LexedFile {
    /// Every token, in source order.
    pub tokens: Vec<Token>,
    /// Per-line allow sets parsed from `// lint: allow(…)` comments.
    pub allows: BTreeMap<usize, BTreeSet<String>>,
    /// Every allow comment as a unit, in source order (dead-allow input).
    pub allow_comments: Vec<AllowComment>,
    /// Lines covered by a `// bounds: …` justification comment.
    pub bounds_ok: BTreeSet<usize>,
}

impl LexedFile {
    /// Whether `rule` is allowed (suppressed) on `line`.
    pub fn is_allowed(&self, line: usize, rule: &str) -> bool {
        self.allows.get(&line).is_some_and(|set| set.contains(rule))
    }

    /// Whether `line` carries (or is covered by) a bounds justification.
    pub fn has_bounds_comment(&self, line: usize) -> bool {
        self.bounds_ok.contains(&line)
    }
}

/// Multi-character operators recognised as single tokens, longest
/// first so `==` never lexes as two `=`.
const MULTI_PUNCT: &[&str] = &[
    "..=", "<<=", ">>=", "==", "!=", "<=", ">=", "->", "=>", "::", "..", "&&", "||", "+=", "-=",
    "*=", "/=", "%=", "^=", "&=", "|=", "<<", ">>",
];

/// Lexes one Rust source file.
pub fn lex(source: &str) -> LexedFile {
    let mut out = LexedFile::default();
    let chars: Vec<char> = source.chars().collect();
    let mut i = 0;
    let mut line = 1;
    // Whether any token has been emitted on the current line — decides
    // if a line comment "stands alone" and so also covers the next line.
    let mut line_has_token = false;

    while i < chars.len() {
        let c = chars[i];
        match c {
            '\n' => {
                line += 1;
                line_has_token = false;
                i += 1;
            }
            c if c.is_whitespace() => i += 1,
            '/' if chars.get(i + 1) == Some(&'/') => {
                let start = i;
                while i < chars.len() && chars[i] != '\n' {
                    i += 1;
                }
                let text: String = chars[start..i].iter().collect();
                note_comment(&mut out, &text, line, line_has_token);
            }
            '/' if chars.get(i + 1) == Some(&'*') => {
                // Nested block comments, per the Rust grammar.
                let mut depth = 1;
                i += 2;
                while i < chars.len() && depth > 0 {
                    if chars[i] == '/' && chars.get(i + 1) == Some(&'*') {
                        depth += 1;
                        i += 2;
                    } else if chars[i] == '*' && chars.get(i + 1) == Some(&'/') {
                        depth -= 1;
                        i += 2;
                    } else {
                        if chars[i] == '\n' {
                            line += 1;
                        }
                        i += 1;
                    }
                }
            }
            '"' => {
                i = skip_string(&chars, i, &mut line);
                out.tokens.push(Token { kind: TokenKind::Str, text: String::new(), line });
                line_has_token = true;
            }
            '\'' => {
                // Lifetime (`'a`) vs char literal (`'a'`, `'\n'`).
                let next = chars.get(i + 1).copied();
                let after = chars.get(i + 2).copied();
                let is_lifetime = matches!(next, Some(n) if n.is_alphabetic() || n == '_')
                    && after != Some('\'');
                if is_lifetime {
                    let start = i;
                    i += 1;
                    while i < chars.len() && (chars[i].is_alphanumeric() || chars[i] == '_') {
                        i += 1;
                    }
                    let text: String = chars[start..i].iter().collect();
                    out.tokens.push(Token { kind: TokenKind::Lifetime, text, line });
                } else {
                    i += 1; // opening quote
                    while i < chars.len() && chars[i] != '\'' {
                        if chars[i] == '\\' {
                            i += 1;
                        }
                        i += 1;
                    }
                    i += 1; // closing quote
                    out.tokens.push(Token { kind: TokenKind::Char, text: String::new(), line });
                }
                line_has_token = true;
            }
            c if c.is_ascii_digit() => {
                let start = i;
                i = skip_number(&chars, i);
                let text: String = chars[start..i].iter().collect();
                out.tokens.push(Token { kind: TokenKind::Number, text, line });
                line_has_token = true;
            }
            c if c.is_alphabetic() || c == '_' => {
                let start = i;
                while i < chars.len() && (chars[i].is_alphanumeric() || chars[i] == '_') {
                    i += 1;
                }
                let text: String = chars[start..i].iter().collect();
                // Raw/byte string prefixes: `r"…"`, `r#"…"#`, `b"…"`,
                // `br#"…"#` lex as an ident glued to a string start.
                let is_raw_prefix = matches!(text.as_str(), "r" | "b" | "br")
                    && matches!(chars.get(i), Some('"') | Some('#'));
                if is_raw_prefix {
                    i = skip_raw_string(&chars, i, &mut line);
                    out.tokens.push(Token { kind: TokenKind::Str, text: String::new(), line });
                } else {
                    out.tokens.push(Token { kind: TokenKind::Ident, text, line });
                }
                line_has_token = true;
            }
            _ => {
                let rest: String = chars[i..chars.len().min(i + 3)].iter().collect();
                let mut matched = None;
                for op in MULTI_PUNCT {
                    if rest.starts_with(op) {
                        matched = Some(*op);
                        break;
                    }
                }
                let text = match matched {
                    Some(op) => {
                        i += op.len();
                        op.to_string()
                    }
                    None => {
                        i += 1;
                        c.to_string()
                    }
                };
                out.tokens.push(Token { kind: TokenKind::Punct, text, line });
                line_has_token = true;
            }
        }
    }
    out
}

/// Consumes a `"…"` string starting at the opening quote; returns the
/// index past the closing quote. Tracks embedded newlines.
fn skip_string(chars: &[char], mut i: usize, line: &mut usize) -> usize {
    i += 1;
    while i < chars.len() {
        match chars[i] {
            '\\' => i += 2,
            '"' => return i + 1,
            '\n' => {
                *line += 1;
                i += 1;
            }
            _ => i += 1,
        }
    }
    i
}

/// Consumes a raw string from the first `#` or `"` after the `r`/`br`
/// prefix; returns the index past the closing delimiter.
fn skip_raw_string(chars: &[char], mut i: usize, line: &mut usize) -> usize {
    let mut hashes = 0;
    while chars.get(i) == Some(&'#') {
        hashes += 1;
        i += 1;
    }
    if chars.get(i) != Some(&'"') {
        return i; // `r#foo` raw identifier, not a string — leave it
    }
    i += 1;
    while i < chars.len() {
        if chars[i] == '\n' {
            *line += 1;
        } else if chars[i] == '"' {
            let mut ok = true;
            for k in 0..hashes {
                if chars.get(i + 1 + k) != Some(&'#') {
                    ok = false;
                    break;
                }
            }
            if ok {
                return i + 1 + hashes;
            }
        }
        i += 1;
    }
    i
}

/// Consumes a numeric literal (decimal, hex/octal/binary, float with
/// fraction/exponent, type suffix). Stops before `..` (ranges) and
/// before `.method()` calls on literals.
fn skip_number(chars: &[char], mut i: usize) -> usize {
    let hex = chars[i] == '0' && matches!(chars.get(i + 1), Some('x') | Some('X'));
    loop {
        // Digits, hex digits, type suffixes, and a bare `e` exponent
        // are all alphanumeric runs.
        while i < chars.len() && (chars[i].is_alphanumeric() || chars[i] == '_') {
            i += 1;
        }
        // Fractional part: `.` followed by a digit (so `1..n` ranges
        // and `1.max()` method calls are left alone).
        if !hex && chars.get(i) == Some(&'.') && chars.get(i + 1).is_some_and(|c| c.is_ascii_digit())
        {
            i += 1;
            continue;
        }
        // Signed exponent: the `e`/`E` was consumed by the run above;
        // `1e-9` / `1.5E+3` stop at the sign, consumed here.
        if !hex
            && matches!(chars.get(i.wrapping_sub(1)), Some('e') | Some('E'))
            && matches!(chars.get(i), Some('+') | Some('-'))
            && chars.get(i + 1).is_some_and(|c| c.is_ascii_digit())
        {
            i += 1;
            continue;
        }
        return i;
    }
}

/// `true` when a [`TokenKind::Number`] token is a float literal: it has
/// a fraction, a decimal exponent, or an `f32`/`f64` suffix.
pub fn number_is_float(text: &str) -> bool {
    if text.starts_with("0x") || text.starts_with("0X") {
        return false;
    }
    text.contains('.')
        || text.ends_with("f32")
        || text.ends_with("f64")
        || text.contains(['e', 'E'])
}

/// Records allow/bounds information from one line comment.
fn note_comment(out: &mut LexedFile, text: &str, line: usize, line_has_token: bool) {
    // Doc comments (`///`, `//!`) are rendered documentation, not
    // directives — a docs mention of the allow syntax must neither
    // suppress findings nor count as an allow for the dead-allow rule.
    if text.starts_with("///") || text.starts_with("//!") {
        return;
    }
    // A comment with no code before it on its line covers the next
    // line too, so justifications can sit above the flagged statement.
    let covered: &[usize] = if line_has_token { &[line] } else { &[line, line + 1] };
    if let Some(idx) = text.find("lint: allow(") {
        let rest = &text[idx + "lint: allow(".len()..];
        if let Some(end) = rest.find(')') {
            let mut rules = Vec::new();
            for rule in rest[..end].split(',') {
                let rule = rule.trim();
                if !rule.is_empty() {
                    for &l in covered {
                        out.allows.entry(l).or_default().insert(rule.to_string());
                    }
                    rules.push(rule.to_string());
                }
            }
            if !rules.is_empty() {
                out.allow_comments.push(AllowComment {
                    line,
                    covered: covered.to_vec(),
                    rules,
                });
            }
        }
    }
    if text.contains("bounds:") {
        for &l in covered {
            out.bounds_ok.insert(l);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .into_iter()
            .filter(|t| t.kind == TokenKind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn comments_and_strings_are_not_tokens() {
        let src = "// HashMap in a comment\nlet x = \"HashMap in a string\"; /* HashMap\n in a block */ let y = 1;";
        let ids = idents(src);
        assert_eq!(ids, vec!["let", "x", "let", "y"]);
    }

    #[test]
    fn nested_block_comments_terminate() {
        let ids = idents("/* a /* nested */ still comment */ fin");
        assert_eq!(ids, vec!["fin"]);
    }

    #[test]
    fn raw_strings_swallow_their_contents() {
        let ids = idents("let s = r#\"Instant::now() \"quoted\" \"#; done");
        assert_eq!(ids, vec!["let", "s", "done"]);
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let toks = lex("fn f<'a>(x: &'a str) { let c = 'x'; let nl = '\\n'; }");
        let lifetimes = toks.tokens.iter().filter(|t| t.kind == TokenKind::Lifetime).count();
        let chars = toks.tokens.iter().filter(|t| t.kind == TokenKind::Char).count();
        assert_eq!(lifetimes, 2);
        assert_eq!(chars, 2);
    }

    #[test]
    fn multi_char_operators_are_single_tokens() {
        let toks = lex("a == b != c :: d -> e");
        let puncts: Vec<String> = toks
            .tokens
            .into_iter()
            .filter(|t| t.kind == TokenKind::Punct)
            .map(|t| t.text)
            .collect();
        assert_eq!(puncts, vec!["==", "!=", "::", "->"]);
    }

    #[test]
    fn numbers_classify_floats() {
        let toks = lex("0.5 1e-9 2f32 42 0xff 10u64 1..5");
        let nums: Vec<(String, bool)> = toks
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Number)
            .map(|t| (t.text.clone(), number_is_float(&t.text)))
            .collect();
        assert_eq!(
            nums,
            vec![
                ("0.5".to_string(), true),
                ("1e-9".to_string(), true),
                ("2f32".to_string(), true),
                ("42".to_string(), false),
                ("0xff".to_string(), false),
                ("10u64".to_string(), false),
                ("1".to_string(), false),
                ("5".to_string(), false),
            ]
        );
    }

    #[test]
    fn line_numbers_survive_multiline_constructs() {
        let src = "first\n/* two\nlines */\nfourth";
        let toks = lex(src);
        assert_eq!(toks.tokens[0].line, 1);
        assert_eq!(toks.tokens[1].line, 4);
    }

    #[test]
    fn allow_comment_covers_own_and_next_line_when_alone() {
        let src = "// lint: allow(hash-container)\nlet m = HashMap::new();\nlet n = 2; // lint: allow(float-eq)\nlet k = 3;";
        let f = lex(src);
        assert!(f.is_allowed(1, "hash-container"));
        assert!(f.is_allowed(2, "hash-container"));
        assert!(f.is_allowed(3, "float-eq"));
        assert!(!f.is_allowed(4, "float-eq"), "trailing comment covers only its own line");
    }

    #[test]
    fn allow_comment_parses_multiple_rules() {
        let f = lex("x(); // lint: allow(panic-path, float-eq)");
        assert!(f.is_allowed(1, "panic-path"));
        assert!(f.is_allowed(1, "float-eq"));
        assert!(!f.is_allowed(1, "hash-container"));
    }

    #[test]
    fn bounds_comment_is_recorded() {
        let f = lex("// bounds: idx < len checked above\nlet v = xs[idx];");
        assert!(f.has_bounds_comment(1));
        assert!(f.has_bounds_comment(2));
    }
}
