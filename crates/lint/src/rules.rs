//! The rule engine: scope configuration plus the token-stream walks
//! that produce findings.
//!
//! ## Rule catalogue
//!
//! | rule | family | scope | fires on |
//! |------|--------|-------|----------|
//! | `ambient-time` | determinism | numeric crates | `Instant::now`, `SystemTime`, `UNIX_EPOCH` |
//! | `clock-scope` | determinism | whole workspace minus timing modules | `Instant::now`, `SystemTime`, `UNIX_EPOCH` outside [`CLOCK_SCOPES`] |
//! | `ambient-entropy` | determinism | numeric crates | `thread_rng`, `from_entropy`, `OsRng` |
//! | `hash-container` | determinism | numeric crates | any `HashMap` / `HashSet` use |
//! | `panic-path` | panic-safety | serve request paths + kernel bench (allowlisted) | `.unwrap()`, `.expect()`, `panic!`-family macros, indexing without a `// bounds:` comment |
//! | `float-eq` | float hygiene | numeric crates | `==` / `!=` against a float literal |
//! | `extern-crate` | hermeticity | whole workspace | any `extern crate` item |
//! | `foreign-use` | hermeticity | whole workspace | a `use` root outside std/core/alloc and the workspace |
//! | `cargo-dep` | hermeticity | every `Cargo.toml` | a dependency that is not an in-tree path (see [`crate::manifest`]) |
//!
//! Code inside `#[cfg(test)]` regions and under `tests/` directories is
//! exempt from the determinism, panic-safety, and float-hygiene
//! families (tests may hash, unwrap, and compare exactly); the
//! hermeticity family applies everywhere — tests must build offline
//! too.
//!
//! Every rule honours the `// lint: allow(<rule>)` escape hatch parsed
//! by the lexer. The determinism and panic-safety families additionally
//! have a per-rule file allowlist ([`ALLOWED_FILES`]) for files whose
//! entire purpose is the exempted behaviour (e.g. wall-clock timing for
//! tracing, or a bench harness whose asserts are its error handling).

use crate::items::TestRegionTracker;
use crate::lexer::{lex, number_is_float, LexedFile, Token, TokenKind};
use crate::report::Finding;
use std::collections::BTreeSet;

/// Every rule identifier the engine knows, in stable order.
pub const RULES: &[&str] = &[
    "ambient-time",
    "clock-scope",
    "ambient-entropy",
    "hash-container",
    "panic-path",
    "panic-reach",
    "float-eq",
    "extern-crate",
    "foreign-use",
    "cargo-dep",
    "atomic-manifest",
    "relaxed-publish",
    "lock-order",
    "lock-across-blocking",
    "dead-allow",
];

/// A path scope: exact workspace-relative entries plus `/`-suffixed
/// directory prefixes. One shared matcher replaces the three
/// copy-pasted closures that previously implemented [`PANIC_SCOPES`],
/// [`CLOCK_SCOPES`], and [`ALLOWED_FILES`] path tests — same
/// semantics, one place to get them right.
#[derive(Debug)]
pub struct ScopeSpec {
    /// What the scope governs, for diagnostics.
    pub name: &'static str,
    /// Exact paths, or directory prefixes when ending in `/`.
    pub entries: &'static [&'static str],
}

impl ScopeSpec {
    /// A scope over `entries` (see [`path_matches`] for entry
    /// semantics).
    pub const fn new(name: &'static str, entries: &'static [&'static str]) -> Self {
        Self { name, entries }
    }

    /// Whether `rel_path` falls inside this scope.
    pub fn contains(&self, rel_path: &str) -> bool {
        self.entries.iter().any(|e| path_matches(e, rel_path))
    }
}

/// Whether one scope entry covers `rel_path`: an entry ending in `/`
/// is a directory prefix; any other entry must match exactly.
pub fn path_matches(entry: &str, rel_path: &str) -> bool {
    if entry.ends_with('/') {
        rel_path.starts_with(entry)
    } else {
        rel_path == entry
    }
}

/// What one rule pass produced for one file: kept findings, the
/// suppression count, and which `(line, rule)` suppressions actually
/// fired — the dead-allow rule's evidence that an allow comment is
/// still alive.
#[derive(Debug, Default)]
pub struct RuleOutcome {
    /// Non-suppressed findings.
    pub findings: Vec<Finding>,
    /// Findings suppressed by allow comments.
    pub suppressed: usize,
    /// The `(line, rule)` of each suppression that fired.
    pub used_allows: Vec<(usize, String)>,
}

impl RuleOutcome {
    /// Reports one violation, routing it through `lexed`'s
    /// allow-comment check.
    pub fn report(&mut self, rel: &str, lexed: &LexedFile, rule: &str, line: usize, message: &str) {
        if lexed.is_allowed(line, rule) {
            self.suppressed += 1;
            self.used_allows.push((line, rule.to_string()));
        } else {
            self.findings.push(Finding {
                file: rel.to_string(),
                line,
                rule: rule.to_string(),
                message: message.to_string(),
            });
        }
    }

    /// Folds another outcome into this one.
    pub fn merge(&mut self, other: RuleOutcome) {
        self.findings.extend(other.findings);
        self.suppressed += other.suppressed;
        self.used_allows.extend(other.used_allows);
    }
}

/// Crates whose numerics must be deterministic: the determinism and
/// float-hygiene families apply to files under these prefixes.
pub const NUMERIC_SCOPES: &[&str] =
    &["crates/tensor/src/", "crates/nn/src/", "crates/core/src/", "crates/data/src/"];

/// Serve request-path files where the panic-safety family applies:
/// everything a request touches between the TCP read and the reply
/// must use typed errors, never panic. An entry ending in `/` is a
/// directory prefix covering every file beneath it; other entries
/// match exactly. The whole snapshot crate is in scope — corrupt or
/// truncated snapshot bytes must surface as typed [`SnapshotError`]s,
/// never as panics, on the serving path. The kernel-bench binary is
/// in scope too — it drives the same request-path code — but carries
/// a recorded [`ALLOWED_FILES`] exemption rather than being silently
/// out of scope.
pub const PANIC_SCOPES: &[&str] = &[
    "crates/bench/src/bin/kernel_bench.rs",
    "crates/serve/src/admission.rs",
    "crates/serve/src/engine.rs",
    "crates/serve/src/protocol.rs",
    "crates/serve/src/server.rs",
    "crates/serve/src/swap.rs",
    "crates/snapshot/src/",
];

/// [`PANIC_SCOPES`] as a [`ScopeSpec`].
pub static PANIC_SCOPE: ScopeSpec = ScopeSpec::new("panic-path", PANIC_SCOPES);

/// Whether `rel_path` falls under the panic-safety scope: an exact
/// [`PANIC_SCOPES`] entry, or any entry ending in `/` that prefixes it.
pub fn in_panic_scope(rel_path: &str) -> bool {
    PANIC_SCOPE.contains(rel_path)
}

/// The timing modules: the only non-test files allowed to read ambient
/// clocks (`Instant::now`, `SystemTime`, `UNIX_EPOCH`). Same entry
/// semantics as [`PANIC_SCOPES`]: a trailing `/` is a directory prefix,
/// anything else matches exactly. Everything outside this list answers
/// to the `clock-scope` rule — a clock read that creeps into, say, the
/// frozen-model scorer or the snapshot reader is a determinism bug
/// waiting to happen, and must either move its timing into one of
/// these modules or record a justification.
///
/// Numeric crates ([`NUMERIC_SCOPES`]) are deliberately *not* listed:
/// there the stricter `ambient-time` rule governs (with its own
/// recorded exemptions, e.g. `train.rs`), and `clock-scope` stays
/// silent so one clock read never fires two rules.
pub const CLOCK_SCOPES: &[&str] = &[
    // Benchmarks exist to measure wall-clock time.
    "crates/bench/src/",
    // The criterion shim is a timing harness by definition.
    "crates/compat/criterion/src/",
    // Tracing, telemetry records, sliding windows: the clock's home.
    "crates/obs/src/",
    // Token-bucket refill and predicted-wait shedding are time-based.
    "crates/serve/src/admission.rs",
    // Queue-wait / score-stage / deadline timing on the request path.
    "crates/serve/src/engine.rs",
    // Stage histograms and window plumbing own per-stage durations.
    "crates/serve/src/metrics.rs",
    // The connection writer times serialize-and-write per response.
    "crates/serve/src/server.rs",
    // The lint driver times its own rule passes for the report.
    "crates/lint/src/lib.rs",
];

/// [`CLOCK_SCOPES`] as a [`ScopeSpec`].
pub static CLOCK_SCOPE: ScopeSpec = ScopeSpec::new("clock-scope", CLOCK_SCOPES);

/// Whether `rel_path` is a timing module where ambient clock reads are
/// legitimate (exact [`CLOCK_SCOPES`] entry, or a `/`-suffixed prefix).
pub fn in_clock_scope(rel_path: &str) -> bool {
    CLOCK_SCOPE.contains(rel_path)
}

/// Per-rule file allowlist: `(rule, workspace-relative path, why)`.
/// An entry exempts the whole file from that one rule; the
/// justification is part of the record on purpose — an allowlist entry
/// without a reason is a smell.
pub const ALLOWED_FILES: &[(&str, &str, &str)] = &[
    (
        "ambient-time",
        "crates/core/src/train.rs",
        "wall-clock timing feeds tracing/metrics only; the digest zeroes every wall-clock field",
    ),
    (
        "panic-path",
        "crates/bench/src/bin/kernel_bench.rs",
        "a measurement harness must fail loudly on any setup/shape error; asserts are its error handling",
    ),
    (
        "clock-scope",
        "examples/fast_vs_full.rs",
        "a fast-vs-full latency comparison demo; wall-clock timing is the example's entire point",
    ),
    (
        "panic-reach",
        "crates/compat/json/src/parse.rs",
        "every parser `.expect()` is peek-guarded (the cursor was just checked non-empty); \
         a malformed request still returns Err through Json::parse, never a panic",
    ),
    (
        "panic-reach",
        "crates/compat/criterion/src/lib.rs",
        "bench-only harness linked into the reached set through `.stats()` method-name \
         over-approximation; nothing in the serve path constructs its types",
    ),
];

/// Scope/identity context for one analyzer run.
#[derive(Debug)]
pub struct Analyzer {
    /// Underscored package names of every workspace crate — the `use`
    /// roots that count as in-tree for the `foreign-use` rule.
    pub workspace_roots: BTreeSet<String>,
}

/// `use` roots that are always legitimate besides workspace crates.
const STD_ROOTS: &[&str] = &["std", "core", "alloc", "crate", "self", "super"];

impl Analyzer {
    /// An analyzer that treats `package_names` (dash or underscore
    /// form) as in-tree `use` roots.
    pub fn new(package_names: impl IntoIterator<Item = String>) -> Self {
        let workspace_roots =
            package_names.into_iter().map(|n| n.replace('-', "_")).collect();
        Self { workspace_roots }
    }

    /// Analyzes one `.rs` file. `rel_path` decides which scopes apply;
    /// returns the kept findings and the number suppressed by allow
    /// comments or the file allowlist.
    pub fn analyze_source(&self, rel_path: &str, source: &str) -> (Vec<Finding>, usize) {
        let lexed = lex(source);
        let out = self.analyze_lexed(rel_path, &lexed);
        (out.findings, out.suppressed)
    }

    /// The core rule walk over an already-lexed file (so the driver
    /// lexes once and shares the tokens with the item-graph passes).
    pub fn analyze_lexed(&self, rel_path: &str, lexed: &LexedFile) -> RuleOutcome {
        let in_tests_dir = rel_path.contains("/tests/") || rel_path.starts_with("tests/");
        let numeric = !in_tests_dir && NUMERIC_SCOPES.iter().any(|p| rel_path.starts_with(p));
        let panic_scope = !in_tests_dir
            && in_panic_scope(rel_path)
            && !self.file_allowed("panic-path", rel_path);
        // Clock confinement applies to every non-test file that is
        // neither a timing module nor a numeric crate (where the
        // stricter `ambient-time` rule already owns clock reads).
        let clock_confined = !in_tests_dir
            && !NUMERIC_SCOPES.iter().any(|p| rel_path.starts_with(p))
            && !in_clock_scope(rel_path)
            && !self.file_allowed("clock-scope", rel_path);

        let mut sink = Sink { rel_path, lexed, out: RuleOutcome::default() };
        let toks = &lexed.tokens;
        let mut test_region = TestRegionTracker::default();

        // Modules declared in this file: with 2018 uniform paths,
        // `use sibling::X` is a legitimate local root when `mod
        // sibling;` appears alongside it (the `pub use module::…`
        // re-export pattern every crate root here uses).
        let local_mods: BTreeSet<&str> = toks
            .windows(2)
            .filter(|w| {
                w[0].kind == TokenKind::Ident
                    && w[0].text == "mod"
                    && w[1].kind == TokenKind::Ident
            })
            .map(|w| w[1].text.as_str())
            .collect();

        for i in 0..toks.len() {
            let in_test = test_region.observe(toks, i);
            let t = &toks[i];

            // Hermeticity: applies everywhere, tests included.
            if t.kind == TokenKind::Ident && t.text == "extern" && ident_at(toks, i + 1, "crate")
            {
                sink.report(
                    "extern-crate",
                    t.line,
                    "`extern crate` bypasses the manifest; declare an in-tree dependency instead",
                );
            }
            if t.kind == TokenKind::Ident && t.text == "use" {
                if let Some(root) = use_root(toks, i) {
                    if !STD_ROOTS.contains(&root.text.as_str())
                        && !self.workspace_roots.contains(&root.text)
                        && !local_mods.contains(root.text.as_str())
                    {
                        sink.report(
                            "foreign-use",
                            root.line,
                            &format!(
                                "`use {}…` names a root outside std and this workspace",
                                root.text
                            ),
                        );
                    }
                }
            }

            if in_test {
                continue;
            }

            if numeric && !self.file_allowed("ambient-time", rel_path) {
                if t.kind == TokenKind::Ident
                    && t.text == "Instant"
                    && punct_at(toks, i + 1, "::")
                    && ident_at(toks, i + 2, "now")
                {
                    sink.report(
                        "ambient-time",
                        t.line,
                        "`Instant::now()` reads ambient wall-clock time in a deterministic numeric crate",
                    );
                }
                if t.kind == TokenKind::Ident && (t.text == "SystemTime" || t.text == "UNIX_EPOCH")
                {
                    sink.report(
                        "ambient-time",
                        t.line,
                        &format!("`{}` reads ambient wall-clock time in a deterministic numeric crate", t.text),
                    );
                }
            }
            if clock_confined {
                if t.kind == TokenKind::Ident
                    && t.text == "Instant"
                    && punct_at(toks, i + 1, "::")
                    && ident_at(toks, i + 2, "now")
                {
                    sink.report(
                        "clock-scope",
                        t.line,
                        "`Instant::now()` outside the timing modules; move the measurement into a CLOCK_SCOPES file or justify it",
                    );
                }
                if t.kind == TokenKind::Ident && (t.text == "SystemTime" || t.text == "UNIX_EPOCH")
                {
                    sink.report(
                        "clock-scope",
                        t.line,
                        &format!("`{}` outside the timing modules; move the measurement into a CLOCK_SCOPES file or justify it", t.text),
                    );
                }
            }
            if numeric
                && t.kind == TokenKind::Ident
                && matches!(t.text.as_str(), "thread_rng" | "from_entropy" | "OsRng")
                && !self.file_allowed("ambient-entropy", rel_path)
            {
                sink.report(
                    "ambient-entropy",
                    t.line,
                    &format!("`{}` draws ambient entropy; numeric crates must use seeded streams", t.text),
                );
            }
            if numeric
                && t.kind == TokenKind::Ident
                && (t.text == "HashMap" || t.text == "HashSet")
                && !self.file_allowed("hash-container", rel_path)
            {
                sink.report(
                    "hash-container",
                    t.line,
                    &format!(
                        "`{}` has randomized iteration order; use BTree collections or justify with an allow comment",
                        t.text
                    ),
                );
            }
            if numeric && t.kind == TokenKind::Punct && (t.text == "==" || t.text == "!=") {
                let prev_float = i > 0
                    && toks[i - 1].kind == TokenKind::Number
                    && number_is_float(&toks[i - 1].text);
                let next_float = toks
                    .get(i + 1)
                    .is_some_and(|n| n.kind == TokenKind::Number && number_is_float(&n.text));
                if prev_float || next_float {
                    sink.report(
                        "float-eq",
                        t.line,
                        &format!("direct `{}` against a float literal; compare with a tolerance or justify exactness", t.text),
                    );
                }
            }

            if panic_scope {
                if t.kind == TokenKind::Punct
                    && t.text == "."
                    && toks.get(i + 1).is_some_and(|n| {
                        n.kind == TokenKind::Ident && (n.text == "unwrap" || n.text == "expect")
                    })
                    && punct_at(toks, i + 2, "(")
                {
                    let name = &toks[i + 1].text;
                    sink.report(
                        "panic-path",
                        toks[i + 1].line,
                        &format!("`.{name}()` can panic on a request path; return a typed ServeError instead"),
                    );
                }
                if t.kind == TokenKind::Ident
                    && matches!(t.text.as_str(), "panic" | "unreachable" | "todo" | "unimplemented")
                    && punct_at(toks, i + 1, "!")
                {
                    sink.report(
                        "panic-path",
                        t.line,
                        &format!("`{}!` aborts a request path; return a typed ServeError instead", t.text),
                    );
                }
                if t.kind == TokenKind::Punct && t.text == "[" && i > 0 {
                    let prev = &toks[i - 1];
                    let is_index = matches!(prev.kind, TokenKind::Ident if !is_keyword(&prev.text))
                        || (prev.kind == TokenKind::Punct
                            && (prev.text == "]" || prev.text == ")"));
                    if is_index && !sink.lexed.has_bounds_comment(t.line) {
                        sink.report(
                            "panic-path",
                            t.line,
                            "indexing can panic on a request path; add a `// bounds: …` justification or use `.get()`",
                        );
                    }
                }
            }
        }
        sink.out
    }

    /// Whether [`ALLOWED_FILES`] exempts `rel_path` from `rule`.
    pub fn file_allowed(&self, rule: &str, rel_path: &str) -> bool {
        ALLOWED_FILES.iter().any(|(r, p, _)| *r == rule && path_matches(p, rel_path))
    }
}

/// Accumulates findings, routing each through the allow-comment check.
struct Sink<'a> {
    rel_path: &'a str,
    lexed: &'a LexedFile,
    out: RuleOutcome,
}

impl Sink<'_> {
    fn report(&mut self, rule: &str, line: usize, message: &str) {
        self.out.report(self.rel_path, self.lexed, rule, line, message);
    }
}

/// The dead-allow rule: every `// lint: allow(…)` comment must still
/// suppress something. `used` is the union of `(line, rule)`
/// suppression events every pass produced for this file; an allow
/// comment naming a rule with no used event on a covered line is rot
/// — the code it excused was fixed or moved — and a comment naming a
/// rule the engine doesn't know is a typo that never suppressed
/// anything. `allow(dead-allow)` is exempt from the meta-check (it
/// exists to silence *this* rule) and works as a suppression like any
/// other.
pub fn dead_allow_findings(
    rel_path: &str,
    lexed: &LexedFile,
    used: &[(usize, String)],
) -> RuleOutcome {
    let mut out = RuleOutcome::default();
    for comment in &lexed.allow_comments {
        for rule in &comment.rules {
            if rule == "dead-allow" {
                continue;
            }
            if !RULES.contains(&rule.as_str()) {
                out.report(
                    rel_path,
                    lexed,
                    "dead-allow",
                    comment.line,
                    &format!(
                        "`lint: allow({rule})` names an unknown rule — it has never suppressed \
                         anything (see `groupsa-lint --list-rules`)"
                    ),
                );
                continue;
            }
            let alive = used
                .iter()
                .any(|(line, r)| r == rule && comment.covered.contains(line));
            if !alive {
                out.report(
                    rel_path,
                    lexed,
                    "dead-allow",
                    comment.line,
                    &format!(
                        "`lint: allow({rule})` no longer suppresses anything here; \
                         delete the stale escape hatch"
                    ),
                );
            }
        }
    }
    out
}

fn ident_at(toks: &[Token], i: usize, text: &str) -> bool {
    toks.get(i).is_some_and(|t| t.kind == TokenKind::Ident && t.text == text)
}

fn punct_at(toks: &[Token], i: usize, text: &str) -> bool {
    toks.get(i).is_some_and(|t| t.kind == TokenKind::Punct && t.text == text)
}

/// Keywords that can precede `[` without it being an index expression.
fn is_keyword(text: &str) -> bool {
    matches!(
        text,
        "as" | "break" | "const" | "continue" | "crate" | "else" | "enum" | "extern" | "fn"
            | "for" | "if" | "impl" | "in" | "let" | "loop" | "match" | "mod" | "move" | "mut"
            | "pub" | "ref" | "return" | "static" | "struct" | "trait" | "type" | "unsafe"
            | "use" | "where" | "while" | "dyn" | "async" | "await"
    )
}

/// The root identifier of a `use` item starting at token `i` (`use`
/// itself), skipping a leading `::`. `None` when the next token is not
/// an identifier (brace imports of multiple roots are vanishingly rare
/// in this tree and would still be caught per-root once split).
fn use_root(toks: &[Token], i: usize) -> Option<&Token> {
    let mut j = i + 1;
    if punct_at(toks, j, "::") {
        j += 1;
    }
    let t = toks.get(j)?;
    (t.kind == TokenKind::Ident).then_some(t)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn analyzer() -> Analyzer {
        Analyzer::new(["groupsa-json".to_string(), "rand".to_string()])
    }

    fn rules_fired(rel: &str, src: &str) -> Vec<(usize, String)> {
        let (findings, _) = analyzer().analyze_source(rel, src);
        findings.into_iter().map(|f| (f.line, f.rule)).collect()
    }

    #[test]
    fn instant_now_fires_only_in_numeric_scope() {
        let src = "fn f() { let t = Instant::now(); }";
        assert_eq!(
            rules_fired("crates/core/src/model.rs", src),
            vec![(1, "ambient-time".to_string())]
        );
        assert!(rules_fired("crates/bench/src/lib.rs", src).is_empty());
    }

    #[test]
    fn clock_scope_confines_clocks_to_timing_modules() {
        let src = "fn f() { let t = Instant::now(); let s = SystemTime::now(); }";
        // Outside any allowlist: both clock reads fire.
        assert_eq!(
            rules_fired("crates/serve/src/frozen.rs", src),
            vec![(1, "clock-scope".to_string()), (1, "clock-scope".to_string())]
        );
        // Timing modules: exact entries and directory prefixes.
        assert!(rules_fired("crates/serve/src/server.rs", src).is_empty());
        assert!(rules_fired("crates/serve/src/metrics.rs", src).is_empty());
        assert!(rules_fired("crates/obs/src/telemetry.rs", src).is_empty());
        assert!(rules_fired("crates/obs/src/bin/obs_top.rs", src).is_empty());
        assert!(rules_fired("crates/bench/src/bin/serve_bench.rs", src).is_empty());
        assert!(rules_fired("crates/compat/criterion/src/lib.rs", src).is_empty());
        // Numeric crates answer to `ambient-time` instead — one clock
        // read never fires two rules.
        assert_eq!(
            rules_fired("crates/core/src/model.rs", src),
            vec![(1, "ambient-time".to_string()), (1, "ambient-time".to_string())]
        );
        // Tests may read clocks freely.
        assert!(rules_fired("crates/serve/tests/latency.rs", src).is_empty());
    }

    #[test]
    fn clock_scope_exact_entries_do_not_become_prefixes() {
        assert!(in_clock_scope("crates/serve/src/engine.rs"));
        assert!(in_clock_scope("crates/serve/src/admission.rs"));
        assert!(in_clock_scope("crates/obs/src/trace.rs"));
        assert!(in_clock_scope("crates/bench/src/experiments.rs"));
        assert!(!in_clock_scope("crates/serve/src/frozen.rs"));
        assert!(!in_clock_scope("crates/serve/src/protocol.rs"));
        assert!(!in_clock_scope("crates/snapshot/src/reader.rs"));
        assert!(!in_clock_scope("crates/core/src/train.rs"));
    }

    #[test]
    fn allowed_file_exempts_one_rule_not_all() {
        let src = "fn f() { let t = Instant::now(); let m = HashMap::new(); }";
        let fired = rules_fired("crates/core/src/train.rs", src);
        assert_eq!(fired, vec![(1, "hash-container".to_string())]);
    }

    #[test]
    fn cfg_test_region_is_exempt_from_scoped_rules() {
        let src = "fn f() {}\n#[cfg(test)]\nmod tests {\n    fn g() { let m = HashMap::new(); let x = 1.0; if x == 0.0 {} }\n}";
        assert!(rules_fired("crates/nn/src/linear.rs", src).is_empty());
    }

    #[test]
    fn hermeticity_applies_even_inside_tests() {
        let src = "#[cfg(test)]\nmod tests {\n    use serde_json::Value;\n}";
        assert_eq!(
            rules_fired("crates/nn/src/linear.rs", src),
            vec![(3, "foreign-use".to_string())]
        );
    }

    #[test]
    fn foreign_use_accepts_std_and_workspace_roots() {
        let src = "use std::io;\nuse groupsa_json::Json;\nuse rand::Rng;\nuse crate::x;\nuse serde::Serialize;";
        assert_eq!(
            rules_fired("crates/data/src/lib.rs", src),
            vec![(5, "foreign-use".to_string())]
        );
    }

    #[test]
    fn sibling_module_uniform_paths_are_in_tree() {
        let src = "mod engine;\npub use engine::Engine;\nuse serde::Serialize;";
        assert_eq!(
            rules_fired("crates/serve/src/lib.rs", src),
            vec![(3, "foreign-use".to_string())]
        );
    }

    #[test]
    fn panic_scope_directory_prefix_covers_nested_files() {
        let src = "fn f(v: &[u8]) { v.first().unwrap(); }";
        // Directory-prefix entry: every file under crates/snapshot/src/.
        assert_eq!(
            rules_fired("crates/snapshot/src/reader.rs", src),
            vec![(1, "panic-path".to_string())]
        );
        assert_eq!(
            rules_fired("crates/snapshot/src/bin/snapshot_check.rs", src),
            vec![(1, "panic-path".to_string())]
        );
        // Integration tests of the same crate stay exempt.
        assert!(rules_fired("crates/snapshot/tests/roundtrip.rs", src).is_empty());
        // Exact entries do not become prefixes: a sibling of an exact
        // entry is out of scope.
        assert!(in_panic_scope("crates/serve/src/engine.rs"));
        assert!(in_panic_scope("crates/serve/src/admission.rs"));
        assert!(in_panic_scope("crates/serve/src/swap.rs"));
        assert!(!in_panic_scope("crates/serve/src/frozen.rs"));
        assert!(in_panic_scope("crates/snapshot/src/writer.rs"));
        assert!(!in_panic_scope("crates/snapshot/tests/corrupt.rs"));
    }

    #[test]
    fn panic_rules_fire_only_in_request_path_files() {
        let src = "fn f(v: &[u8]) { v.first().unwrap(); panic!(\"no\"); let x = v[0]; }";
        let fired = rules_fired("crates/serve/src/engine.rs", src);
        assert_eq!(
            fired,
            vec![
                (1, "panic-path".to_string()),
                (1, "panic-path".to_string()),
                (1, "panic-path".to_string())
            ]
        );
        assert!(rules_fired("crates/serve/src/frozen.rs", src).is_empty());
    }

    #[test]
    fn bounds_comment_satisfies_the_indexing_check() {
        let src = "fn f(v: &[u8]) -> u8 {\n    // bounds: caller validated idx against len\n    v[0]\n}";
        assert!(rules_fired("crates/serve/src/engine.rs", src).is_empty());
    }

    #[test]
    fn unwrap_or_is_not_unwrap() {
        let src = "fn f(v: Option<u8>) -> u8 { v.unwrap_or(0) }";
        assert!(rules_fired("crates/serve/src/engine.rs", src).is_empty());
    }

    #[test]
    fn slice_types_and_attributes_are_not_indexing() {
        let src = "#[derive(Debug)]\nstruct S;\nfn f(v: &[u8], w: [u8; 2]) {}";
        assert!(rules_fired("crates/serve/src/engine.rs", src).is_empty());
    }

    #[test]
    fn float_eq_fires_on_either_side() {
        let src = "fn f(x: f32) { if x == 0.0 {} if 1.5 != x {} if x == y {} }";
        let fired = rules_fired("crates/tensor/src/matrix.rs", src);
        assert_eq!(fired, vec![(1, "float-eq".to_string()), (1, "float-eq".to_string())]);
    }

    #[test]
    fn allow_comment_suppresses_and_counts() {
        let src = "fn f() {\n    // deterministic: membership only; lint: allow(hash-container)\n    let m = HashSet::new();\n}";
        let (findings, suppressed) = analyzer().analyze_source("crates/data/src/x.rs", src);
        assert!(findings.is_empty());
        assert_eq!(suppressed, 1);
    }

    #[test]
    fn tests_directories_are_exempt_from_scoped_rules() {
        let src = "fn f() { let t = Instant::now(); let x = 1.0 == y; }";
        assert!(rules_fired("crates/core/tests/golden.rs", src).is_empty());
    }

    #[test]
    fn scope_spec_matches_prefixes_and_exact_paths() {
        static SPEC: ScopeSpec =
            ScopeSpec::new("test scope", &["crates/serve/src/", "examples/demo.rs"]);
        // Trailing `/` entries are directory prefixes…
        assert!(SPEC.contains("crates/serve/src/engine.rs"));
        assert!(SPEC.contains("crates/serve/src/bin/server.rs"));
        assert!(!SPEC.contains("crates/serve/tests/smoke.rs"));
        // …bare entries match exactly, not as prefixes.
        assert!(SPEC.contains("examples/demo.rs"));
        assert!(!SPEC.contains("examples/demo.rs.bak"));
        assert!(!SPEC.contains("examples/demo"));
    }

    #[test]
    fn the_shared_scopes_agree_with_their_legacy_membership_tests() {
        // The ScopeSpec refactor must not change what's in scope: spot
        // checks against the known membership of each list.
        assert!(in_panic_scope("crates/serve/src/engine.rs"));
        assert!(!in_panic_scope("crates/core/src/train.rs"));
        assert!(in_clock_scope("crates/obs/src/window.rs"));
        assert!(!in_clock_scope("crates/core/src/voting.rs"));
    }

    #[test]
    fn dead_allow_distinguishes_stale_from_unknown() {
        let src = "fn f(x: f32) {\n    let a = x == 0.5; // lint: allow(float-eq)\n    let b = 1; // lint: allow(float-eq)\n    let c = 2; // lint: allow(not-a-rule)\n}";
        let lexed = crate::lexer::lex(src);
        let out = analyzer().analyze_lexed("crates/core/src/x.rs", &lexed);
        let dead = dead_allow_findings("crates/core/src/x.rs", &lexed, &out.used_allows);
        let fired: Vec<(usize, &str)> = dead
            .findings
            .iter()
            .map(|f| {
                let kind = if f.message.contains("unknown rule") { "unknown" } else { "stale" };
                (f.line, kind)
            })
            .collect();
        assert_eq!(fired, vec![(3, "stale"), (4, "unknown")]);
    }
}
