//! Findings and the machine-readable report.

use groupsa_json::impl_json_struct;

/// Current report schema version (bumped on breaking field changes).
/// v2 added the per-pass `timings` array.
pub const REPORT_VERSION: u32 = 2;

/// Wall-clock cost of one analysis pass, for the lint-cost visibility
/// `scripts/tier1.sh` prints. Timings are measurement, not contract:
/// [`Report::drift_against`] ignores them.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PassTiming {
    /// Pass name (`lex+parse`, `rules`, `atomics`, …).
    pub pass: String,
    /// Microseconds spent in the pass across all files.
    pub micros: u64,
}

impl_json_struct!(PassTiming { pass, micros });

/// One rule violation at a source location.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Finding {
    /// Path relative to the workspace root, `/`-separated.
    pub file: String,
    /// 1-based source line.
    pub line: usize,
    /// Rule identifier (see [`crate::rules::RULES`]).
    pub rule: String,
    /// Human-readable explanation of the violation.
    pub message: String,
}

impl_json_struct!(Finding { file, line, rule, message });

/// The full analyzer output: what was scanned, what fired, and how
/// many findings an allow-comment or allowlist suppressed.
#[derive(Clone, Debug, PartialEq)]
pub struct Report {
    /// Schema version ([`REPORT_VERSION`]).
    pub version: u32,
    /// Source files scanned (`.rs` files plus `Cargo.toml` manifests).
    pub files_scanned: usize,
    /// Findings suppressed by `// lint: allow(…)` comments or the
    /// per-rule allowed-files list.
    pub suppressed: usize,
    /// Per-pass wall-clock timings (excluded from drift comparison).
    pub timings: Vec<PassTiming>,
    /// Non-suppressed violations, in (file, line, rule) order.
    pub findings: Vec<Finding>,
}

impl_json_struct!(Report { version, files_scanned, suppressed, timings, findings });

impl Report {
    /// Assembles a report, sorting findings into (file, line, rule)
    /// order so output is deterministic regardless of scan order.
    pub fn new(files_scanned: usize, suppressed: usize, mut findings: Vec<Finding>) -> Self {
        findings.sort_by(|a, b| {
            (&a.file, a.line, &a.rule).cmp(&(&b.file, b.line, &b.rule))
        });
        Self { version: REPORT_VERSION, files_scanned, suppressed, timings: Vec::new(), findings }
    }

    /// Attaches pass timings (builder-style, after [`Report::new`]).
    pub fn with_timings(mut self, timings: Vec<PassTiming>) -> Self {
        self.timings = timings;
        self
    }

    /// Compares this report against a committed baseline, returning
    /// human-readable drift lines — empty means no drift. Drift is any
    /// change to the *lint state*: findings that appeared or resolved,
    /// a suppression-count change (a new escape hatch is a reviewable
    /// event even when it keeps the tree "clean"), a file-count
    /// change, or a schema bump. Timings are measurements and never
    /// drift.
    pub fn drift_against(&self, baseline: &Report) -> Vec<String> {
        let mut drift = Vec::new();
        if self.version != baseline.version {
            drift.push(format!(
                "schema version changed: {} -> {}",
                baseline.version, self.version
            ));
        }
        for f in &self.findings {
            if !baseline.findings.contains(f) {
                drift.push(format!("new finding: {}:{}: [{}] {}", f.file, f.line, f.rule, f.message));
            }
        }
        for f in &baseline.findings {
            if !self.findings.contains(f) {
                drift.push(format!(
                    "finding in baseline no longer present: {}:{}: [{}]",
                    f.file, f.line, f.rule
                ));
            }
        }
        if self.suppressed != baseline.suppressed {
            drift.push(format!(
                "suppression count changed: {} -> {}",
                baseline.suppressed, self.suppressed
            ));
        }
        if self.files_scanned != baseline.files_scanned {
            drift.push(format!(
                "files scanned changed: {} -> {}",
                baseline.files_scanned, self.files_scanned
            ));
        }
        drift
    }

    /// Whether the tree is clean (no non-suppressed findings).
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }

    /// The `--format text` rendering: one `file:line: [rule] message`
    /// line per finding plus a one-line summary.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        for f in &self.findings {
            out.push_str(&format!("{}:{}: [{}] {}\n", f.file, f.line, f.rule, f.message));
        }
        out.push_str(&format!(
            "groupsa-lint: {} finding(s), {} suppressed, {} file(s) scanned\n",
            self.findings.len(),
            self.suppressed,
            self.files_scanned
        ));
        if !self.timings.is_empty() {
            let per_pass: Vec<String> = self
                .timings
                .iter()
                .map(|t| format!("{} {:.1}ms", t.pass, t.micros as f64 / 1000.0))
                .collect();
            out.push_str(&format!("pass timings: {}\n", per_pass.join(", ")));
        }
        out
    }

    /// The `--format json` rendering (pretty-printed, stable key order).
    pub fn to_json_string(&self) -> String {
        groupsa_json::to_string_pretty(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Report {
        Report::new(
            3,
            2,
            vec![
                Finding {
                    file: "b.rs".into(),
                    line: 9,
                    rule: "float-eq".into(),
                    message: "m2".into(),
                },
                Finding {
                    file: "a.rs".into(),
                    line: 4,
                    rule: "ambient-time".into(),
                    message: "m1".into(),
                },
            ],
        )
    }

    #[test]
    fn findings_are_sorted_for_deterministic_output() {
        let r = sample();
        assert_eq!(r.findings[0].file, "a.rs");
        assert_eq!(r.findings[1].file, "b.rs");
    }

    #[test]
    fn json_roundtrips_through_the_typed_schema() {
        let r = sample();
        let text = r.to_json_string();
        let back: Report = groupsa_json::from_str(&text).unwrap();
        assert_eq!(back, r);
    }

    #[test]
    fn text_rendering_names_file_line_and_rule() {
        let text = sample().to_text();
        assert!(text.contains("a.rs:4: [ambient-time] m1"));
        assert!(text.contains("2 suppressed"));
    }
}
