//! Findings and the machine-readable report.

use groupsa_json::impl_json_struct;

/// Current report schema version (bumped on breaking field changes).
pub const REPORT_VERSION: u32 = 1;

/// One rule violation at a source location.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Finding {
    /// Path relative to the workspace root, `/`-separated.
    pub file: String,
    /// 1-based source line.
    pub line: usize,
    /// Rule identifier (see [`crate::rules::RULES`]).
    pub rule: String,
    /// Human-readable explanation of the violation.
    pub message: String,
}

impl_json_struct!(Finding { file, line, rule, message });

/// The full analyzer output: what was scanned, what fired, and how
/// many findings an allow-comment or allowlist suppressed.
#[derive(Clone, Debug, PartialEq)]
pub struct Report {
    /// Schema version ([`REPORT_VERSION`]).
    pub version: u32,
    /// Source files scanned (`.rs` files plus `Cargo.toml` manifests).
    pub files_scanned: usize,
    /// Findings suppressed by `// lint: allow(…)` comments or the
    /// per-rule allowed-files list.
    pub suppressed: usize,
    /// Non-suppressed violations, in (file, line, rule) order.
    pub findings: Vec<Finding>,
}

impl_json_struct!(Report { version, files_scanned, suppressed, findings });

impl Report {
    /// Assembles a report, sorting findings into (file, line, rule)
    /// order so output is deterministic regardless of scan order.
    pub fn new(files_scanned: usize, suppressed: usize, mut findings: Vec<Finding>) -> Self {
        findings.sort_by(|a, b| {
            (&a.file, a.line, &a.rule).cmp(&(&b.file, b.line, &b.rule))
        });
        Self { version: REPORT_VERSION, files_scanned, suppressed, findings }
    }

    /// Whether the tree is clean (no non-suppressed findings).
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }

    /// The `--format text` rendering: one `file:line: [rule] message`
    /// line per finding plus a one-line summary.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        for f in &self.findings {
            out.push_str(&format!("{}:{}: [{}] {}\n", f.file, f.line, f.rule, f.message));
        }
        out.push_str(&format!(
            "groupsa-lint: {} finding(s), {} suppressed, {} file(s) scanned\n",
            self.findings.len(),
            self.suppressed,
            self.files_scanned
        ));
        out
    }

    /// The `--format json` rendering (pretty-printed, stable key order).
    pub fn to_json_string(&self) -> String {
        groupsa_json::to_string_pretty(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Report {
        Report::new(
            3,
            2,
            vec![
                Finding {
                    file: "b.rs".into(),
                    line: 9,
                    rule: "float-eq".into(),
                    message: "m2".into(),
                },
                Finding {
                    file: "a.rs".into(),
                    line: 4,
                    rule: "ambient-time".into(),
                    message: "m1".into(),
                },
            ],
        )
    }

    #[test]
    fn findings_are_sorted_for_deterministic_output() {
        let r = sample();
        assert_eq!(r.findings[0].file, "a.rs");
        assert_eq!(r.findings[1].file, "b.rs");
    }

    #[test]
    fn json_roundtrips_through_the_typed_schema() {
        let r = sample();
        let text = r.to_json_string();
        let back: Report = groupsa_json::from_str(&text).unwrap();
        assert_eq!(back, r);
    }

    #[test]
    fn text_rendering_names_file_line_and_rule() {
        let text = sample().to_text();
        assert!(text.contains("a.rs:4: [ambient-time] m1"));
        assert!(text.contains("2 suppressed"));
    }
}
