//! The atomics-ordering audit.
//!
//! PRs 8–9 put ~60 hand-placed `Ordering::*` sites on the serve and
//! observability paths (seqlock ring, clock-free windows, hot-swap,
//! shed/stopping flags). One wrong `Relaxed` breaks the telemetry
//! reconciliation or hot-swap guarantees *silently* — the code still
//! compiles, still usually works on x86, and fails probabilistically
//! on weaker memory models. So every atomic operation in the
//! workspace must be **manifested**: listed in [`ATOMIC_SITES`] as
//! `(file, symbol, op, ordering, justification)`, where `symbol` is
//! the atomic field the op applies to. Two rules enforce it:
//!
//! * `atomic-manifest` — an atomic op with no matching manifest entry
//!   fires at the site; a manifest entry matching no site (drift after
//!   a refactor) or carrying an empty justification fires at the top
//!   of its file. Re-justification policy: editing an atomic site's
//!   ordering *must* touch the manifest — the entry match is on the
//!   ordering string, so a silent strengthening/weakening cannot land
//!   without a diff reviewers see next to a justification.
//! * `relaxed-publish` — on the declared cross-thread publish fields
//!   ([`PUBLISH_FIELDS`]: the seqlock `seq` words, the window `stamp`
//!   words, the swap slot), a *write* op whose success ordering is
//!   `Relaxed` fires regardless of the manifest: no justification can
//!   make an unordered publish correct. Loads are deliberately out of
//!   scope — the seqlock's optimistic `Relaxed` pre-read (revalidated
//!   by the acquire CAS) is legitimate and manifested as such.
//!
//! Detection keys on an `Ordering::X` argument inside the call's
//! parens, which cleanly separates `AtomicU64::load` from `Vec`
//! indexing-free `load`s and `std::cmp::Ordering` matches.

use crate::items::{enclosing_symbol, Item, TestRegionTracker};
use crate::lexer::{LexedFile, TokenKind};
use crate::report::Finding;
use crate::rules::RuleOutcome;
use std::collections::BTreeSet;

/// One manifest row: `(file, symbol, op, ordering, justification)`.
/// `symbol` is the atomic field the op applies to (the receiver's last
/// path segment — `seq`, `stamp`, `stopping`, tuple field `0`, …);
/// `ordering` is the `Ordering::` variant list, comma-joined for
/// `compare_exchange`'s success,failure pair. One row covers every
/// site in `file` with the same field/op/ordering — the discipline
/// attaches to the field's protocol, not to each call site, so line
/// churn never invalidates the manifest.
pub type AtomicEntry = (&'static str, &'static str, &'static str, &'static str, &'static str);

/// Method names that are atomic operations when called with an
/// `Ordering::` argument.
pub const ATOMIC_OPS: &[&str] = &[
    "load",
    "store",
    "swap",
    "compare_exchange",
    "compare_exchange_weak",
    "compare_and_swap",
    "fetch_add",
    "fetch_sub",
    "fetch_and",
    "fetch_nand",
    "fetch_or",
    "fetch_xor",
    "fetch_max",
    "fetch_min",
    "fetch_update",
];

/// Cross-thread publish/acquire fields where a `Relaxed` *write* is
/// never justifiable: `(file, field, why it is a publish point)`.
pub const PUBLISH_FIELDS: &[(&str, &str, &str)] = &[
    (
        "crates/obs/src/record.rs",
        "seq",
        "seqlock sequence words: the Release store is what publishes the slot's data to readers",
    ),
    (
        "crates/obs/src/window.rs",
        "stamp",
        "window second-stamps: the AcqRel claim publishes the zeroed counters to concurrent writers",
    ),
    (
        "crates/serve/src/swap.rs",
        "current",
        "hot-swap slot: if the Mutex is ever replaced by an atomic pointer, its store is the model publish",
    ),
];

/// The committed manifest: every atomic op site in the workspace must
/// match a row here (see [`AtomicEntry`] for match semantics). Keep
/// rows grouped by file and field so the protocol reads as a unit;
/// `groupsa-lint --dump-atomics` prints suggested rows for any
/// unmanifested site.
pub const ATOMIC_SITES: &[AtomicEntry] = &[
    // -- core/train.rs: per-phase cost counters, read only by the trainer's
    //    own summary after join(); the join is the synchronization edge.
    ("crates/core/src/train.rs", "backward_us", "fetch_add", "Relaxed",
     "monotonic cost counter; aggregated after thread join, which orders all prior writes"),
    ("crates/core/src/train.rs", "backward_us", "load", "Relaxed",
     "summary read after join; no concurrent writers remain"),
    ("crates/core/src/train.rs", "forward_us", "fetch_add", "Relaxed",
     "monotonic cost counter; aggregated after thread join, which orders all prior writes"),
    ("crates/core/src/train.rs", "forward_us", "load", "Relaxed",
     "summary read after join; no concurrent writers remain"),
    // -- obs/record.rs: per-slot seqlock. `seq` is the publish word:
    //    odd = write in progress, even = stable generation.
    ("crates/obs/src/record.rs", "seq", "load", "Relaxed",
     "writer's optimistic pre-read; any staleness is caught by the acquire CAS that follows"),
    ("crates/obs/src/record.rs", "seq", "load", "Acquire",
     "reader's before/after generation checks; acquire pairs with the writer's release store \
      so matching even values prove the data words in between were stable"),
    ("crates/obs/src/record.rs", "seq", "compare_exchange", "Acquire,Relaxed",
     "acquire claims the slot (seq -> odd) and orders the claim before the data writes; \
      failure retries, so relaxed is enough there"),
    ("crates/obs/src/record.rs", "seq", "store", "Release",
     "publishes the generation (seq -> even); release makes the relaxed data stores visible \
      to any reader that acquires this value"),
    ("crates/obs/src/record.rs", "cell", "store", "Relaxed",
     "data words inside the seqlock critical section; ordered by the surrounding seq \
      acquire-CAS / release-store pair"),
    ("crates/obs/src/record.rs", "data", "load", "Relaxed",
     "data words re-validated by the acquire re-read of seq; a torn read is detected and retried"),
    ("crates/obs/src/record.rs", "head", "fetch_add", "Relaxed",
     "ring cursor: only uniqueness of the claimed index matters, not ordering against data"),
    ("crates/obs/src/record.rs", "head", "load", "Relaxed",
     "approximate occupancy for introspection; staleness is acceptable"),
    ("crates/obs/src/record.rs", "dropped", "fetch_add", "Relaxed",
     "lossy-drop statistic; no reader infers other state from it"),
    ("crates/obs/src/record.rs", "dropped", "load", "Relaxed",
     "statistic read; staleness is acceptable"),
    // -- obs/registry.rs: lock-free metric cells (Counter is a newtype,
    //    hence the `.0` receiver).
    ("crates/obs/src/registry.rs", "0", "fetch_add", "Relaxed",
     "counter increment; metrics tolerate reordering, only the eventual total matters"),
    ("crates/obs/src/registry.rs", "0", "load", "Relaxed",
     "counter read for snapshots; point-in-time staleness is inherent to sampling"),
    ("crates/obs/src/registry.rs", "b", "load", "Relaxed",
     "histogram bucket read during snapshot iteration; buckets are independent statistics"),
    ("crates/obs/src/registry.rs", "buckets", "fetch_add", "Relaxed",
     "histogram bucket increment; independent statistic, no cross-field invariant"),
    ("crates/obs/src/registry.rs", "count", "fetch_add", "Relaxed",
     "histogram observation count; snapshot consistency across fields is not promised"),
    ("crates/obs/src/registry.rs", "count", "load", "Relaxed",
     "statistic read; staleness is acceptable"),
    ("crates/obs/src/registry.rs", "sum", "fetch_add", "Relaxed",
     "histogram running sum; snapshot consistency across fields is not promised"),
    ("crates/obs/src/registry.rs", "sum", "load", "Relaxed",
     "statistic read; staleness is acceptable"),
    ("crates/obs/src/registry.rs", "last", "store", "Relaxed",
     "gauge last-value cell; later store wins, no reader infers other state from it"),
    ("crates/obs/src/registry.rs", "last", "load", "Relaxed",
     "gauge read; staleness is acceptable"),
    ("crates/obs/src/registry.rs", "max", "fetch_max", "Relaxed",
     "monotonic high-water mark; fetch_max is order-insensitive by construction"),
    ("crates/obs/src/registry.rs", "max", "load", "Relaxed",
     "statistic read; staleness is acceptable"),
    // -- obs/trace.rs
    ("crates/obs/src/trace.rs", "seq", "fetch_add", "Relaxed",
     "trace-event sequence number; only uniqueness matters, file writes are mutex-ordered"),
    // -- obs/window.rs: sliding-window buckets. `stamp` is the publish
    //    word that claims and publishes a rotated bucket.
    ("crates/obs/src/window.rs", "stamp", "load", "Acquire",
     "acquire pairs with the rotating CAS; seeing the new stamp orders the bucket reset before \
      any subsequent bucket reads"),
    ("crates/obs/src/window.rs", "stamp", "compare_exchange", "AcqRel,Acquire",
     "acq-rel rotation: acquire sees the previous owner's reset, release publishes ours; \
      exactly one thread wins the rotation"),
    ("crates/obs/src/window.rs", "bucket", "store", "Relaxed",
     "bucket reset inside the rotation winner's critical section; published by the stamp CAS"),
    ("crates/obs/src/window.rs", "bucket", "load", "Relaxed",
     "bucket read for window totals; per-bucket staleness only shifts a sample between buckets"),
    ("crates/obs/src/window.rs", "count", "store", "Relaxed",
     "bucket reset inside the rotation winner's critical section; published by the stamp CAS"),
    ("crates/obs/src/window.rs", "count", "load", "Relaxed",
     "statistic read; staleness is acceptable"),
    ("crates/obs/src/window.rs", "counts", "fetch_add", "Relaxed",
     "per-bucket event count; independent statistic, no cross-field invariant"),
    ("crates/obs/src/window.rs", "latency", "fetch_add", "Relaxed",
     "per-bucket latency sum; independent statistic, no cross-field invariant"),
    // -- serve/admission.rs
    ("crates/serve/src/admission.rs", "ewma_us", "load", "Relaxed",
     "EWMA is a lossy estimate by definition; a stale read only delays the shed decision one tick"),
    ("crates/serve/src/admission.rs", "ewma_us", "store", "Relaxed",
     "single logical writer (batch completion); readers tolerate any interleaving"),
    // -- serve/engine.rs + server.rs: shutdown flags. SeqCst deliberately —
    //    shutdown is rare, and a total order across the flag, the queue
    //    mutex, and the condvar removes any lost-wakeup argument.
    ("crates/serve/src/engine.rs", "stopping", "store", "SeqCst",
     "shutdown flag; SeqCst so the store is totally ordered against the condvar notify"),
    ("crates/serve/src/engine.rs", "stopping", "load", "SeqCst",
     "worker checks under the queue lock; SeqCst keeps the check ordered against the store"),
    ("crates/serve/src/server.rs", "stop", "store", "SeqCst",
     "accept-loop stop flag; cold path, total order chosen over proving a weaker one"),
    ("crates/serve/src/server.rs", "stop", "load", "SeqCst",
     "accept-loop stop check once per connection; cold path, total order keeps it obvious"),
    // -- serve/frozen.rs + metrics.rs: serving statistics.
    ("crates/serve/src/frozen.rs", "latent_hits", "fetch_add", "Relaxed",
     "cache statistic; no reader infers other state from it"),
    ("crates/serve/src/frozen.rs", "latent_hits", "load", "Relaxed",
     "statistic read; staleness is acceptable"),
    ("crates/serve/src/frozen.rs", "rebuilds", "fetch_add", "Relaxed",
     "cache statistic; no reader infers other state from it"),
    ("crates/serve/src/frozen.rs", "rebuilds", "load", "Relaxed",
     "statistic read; staleness is acceptable"),
    ("crates/serve/src/frozen.rs", "rep_hits", "fetch_add", "Relaxed",
     "cache statistic; no reader infers other state from it"),
    ("crates/serve/src/frozen.rs", "rep_hits", "load", "Relaxed",
     "statistic read; staleness is acceptable"),
    ("crates/serve/src/metrics.rs", "batch_seq", "fetch_add", "Relaxed",
     "batch id for telemetry labels; only uniqueness matters"),
];

/// One detected atomic op site.
#[derive(Debug)]
pub struct AtomicSite {
    /// 1-based source line of the op name.
    pub line: usize,
    /// The atomic field the op applies to (receiver's last segment).
    pub field: String,
    /// The op name (`load`, `fetch_add`, …).
    pub op: String,
    /// Comma-joined `Ordering::` variants found in the call's args.
    pub ordering: String,
    /// Qualified symbol of the enclosing fn, or `""` at file scope.
    pub context: String,
}

/// Extracts every atomic op site outside `#[cfg(test)]` regions.
pub fn find_sites(lexed: &LexedFile, items: &[Item]) -> Vec<AtomicSite> {
    let toks = &lexed.tokens;
    let mut tracker = TestRegionTracker::default();
    let mut sites = Vec::new();
    for i in 0..toks.len() {
        let in_test = tracker.observe(toks, i);
        let t = &toks[i];
        if in_test
            || t.kind != TokenKind::Punct
            || t.text != "."
            || !toks.get(i + 1).is_some_and(|n| {
                n.kind == TokenKind::Ident && ATOMIC_OPS.contains(&n.text.as_str())
            })
            || !toks.get(i + 2).is_some_and(|n| n.kind == TokenKind::Punct && n.text == "(")
        {
            continue;
        }
        let op_tok = &toks[i + 1];
        // Collect `Ordering :: X` inside the call's balanced parens;
        // a call with none is not an atomic op (slice `load`s, custom
        // `swap`s, `cmp::Ordering` matches elsewhere on the line).
        let mut depth = 0i32;
        let mut orderings: Vec<&str> = Vec::new();
        let mut j = i + 2;
        while j < toks.len() {
            let a = &toks[j];
            if a.kind == TokenKind::Punct {
                match a.text.as_str() {
                    "(" => depth += 1,
                    ")" => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    _ => {}
                }
            }
            if a.kind == TokenKind::Ident
                && a.text == "Ordering"
                && toks.get(j + 1).is_some_and(|p| p.kind == TokenKind::Punct && p.text == "::")
                && toks.get(j + 2).is_some_and(|v| v.kind == TokenKind::Ident)
            {
                orderings.push(&toks[j + 2].text);
                j += 3;
                continue;
            }
            j += 1;
        }
        if orderings.is_empty() {
            continue;
        }
        sites.push(AtomicSite {
            line: op_tok.line,
            field: receiver_field(toks, i),
            op: op_tok.text.clone(),
            ordering: orderings.join(","),
            context: enclosing_symbol(items, i).unwrap_or("").to_string(),
        });
    }
    sites
}

/// The receiver's last path segment before the `.` at `dot`: walks
/// back over one balanced `[…]` or `(…)` group, then takes the
/// identifier (or tuple-field number) it lands on.
fn receiver_field(toks: &[crate::lexer::Token], dot: usize) -> String {
    let mut k = dot;
    loop {
        let Some(prev) = k.checked_sub(1) else { return String::new() };
        let p = &toks[prev];
        match (&p.kind, p.text.as_str()) {
            (TokenKind::Punct, "]") | (TokenKind::Punct, ")") => {
                // Walk back over the balanced group to its opener,
                // then continue from the token before it (`counts[i]`
                // → `counts`, `claim(sec)` → `claim`).
                let (open, close) = if p.text == "]" { ("[", "]") } else { ("(", ")") };
                let mut depth = 0i32;
                let mut q = prev;
                loop {
                    let t = &toks[q];
                    if t.kind == TokenKind::Punct {
                        if t.text == close {
                            depth += 1;
                        } else if t.text == open {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        }
                    }
                    let Some(next_q) = q.checked_sub(1) else { return String::new() };
                    q = next_q;
                }
                k = q;
            }
            (TokenKind::Ident, s) | (TokenKind::Number, s) => return s.to_string(),
            _ => return String::new(),
        }
    }
}

/// Per-file atomics pass: unmanifested sites fire `atomic-manifest`,
/// Relaxed writes on publish fields fire `relaxed-publish`. Returns
/// the usual outcome plus the indices of `manifest` rows matched by at
/// least one site (input to [`stale_manifest_findings`]).
pub fn check_file(
    rel: &str,
    lexed: &LexedFile,
    items: &[Item],
    manifest: &[AtomicEntry],
    publish: &[(&str, &str, &str)],
) -> (RuleOutcome, BTreeSet<usize>) {
    let mut out = RuleOutcome::default();
    let mut matched = BTreeSet::new();
    for site in find_sites(lexed, items) {
        let context = if site.context.is_empty() { "file scope" } else { &site.context };
        let entry = manifest.iter().position(|(f, sym, op, ord, _)| {
            *f == rel && *sym == site.field && *op == site.op && *ord == site.ordering
        });
        match entry {
            Some(idx) => {
                matched.insert(idx);
            }
            None => out.report(
                rel,
                lexed,
                "atomic-manifest",
                site.line,
                &format!(
                    "atomic `{}.{}` with `Ordering::{}` in `{}` has no ATOMIC_SITES entry; \
                     add (file, field, op, ordering, justification) — `--dump-atomics` prints it",
                    site.field, site.op, site.ordering, context
                ),
            ),
        }
        // Publish-field writes: success ordering (first listed) must
        // not be Relaxed, manifested or not.
        let is_publish = publish.iter().any(|(f, field, _)| *f == rel && *field == site.field);
        let is_write = site.op != "load";
        let success_relaxed = site.ordering.split(',').next() == Some("Relaxed");
        if is_publish && is_write && success_relaxed {
            out.report(
                rel,
                lexed,
                "relaxed-publish",
                site.line,
                &format!(
                    "`{}.{}` is a cross-thread publish point; a Relaxed write ordering cannot \
                     publish `{}`'s protected data (needs Release or stronger)",
                    site.field, site.op, site.field
                ),
            );
        }
    }
    (out, matched)
}

/// Workspace-level manifest hygiene: rows matched by no site are
/// drift, rows with an empty justification are unauditable. Findings
/// land at line 0 of the row's file (the row, not the code, is wrong).
pub fn stale_manifest_findings(
    manifest: &[AtomicEntry],
    matched: &BTreeSet<usize>,
) -> Vec<Finding> {
    let mut findings = Vec::new();
    for (idx, (file, sym, op, ord, why)) in manifest.iter().enumerate() {
        if !matched.contains(&idx) {
            findings.push(Finding {
                file: file.to_string(),
                line: 0,
                rule: "atomic-manifest".to_string(),
                message: format!(
                    "stale ATOMIC_SITES entry ({file}, {sym}, {op}, {ord}): no such atomic site \
                     exists any more; delete or update the manifest row"
                ),
            });
        } else if why.trim().is_empty() {
            findings.push(Finding {
                file: file.to_string(),
                line: 0,
                rule: "atomic-manifest".to_string(),
                message: format!(
                    "ATOMIC_SITES entry ({file}, {sym}, {op}, {ord}) has no justification; \
                     the ordering argument must be explained"
                ),
            });
        }
    }
    findings
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::items::parse_items;
    use crate::lexer::lex;

    fn sites(src: &str) -> Vec<AtomicSite> {
        let lexed = lex(src);
        let items = parse_items(&lexed);
        find_sites(&lexed, &items)
    }

    #[test]
    fn ordering_argument_is_what_makes_a_site_atomic() {
        let src = "fn f(v: &AtomicU64, s: &mut Vec<u8>) {\n    v.store(1, Ordering::Release);\n    s.swap(0, 1);\n    let _ = snapshot.load();\n}";
        let found = sites(src);
        assert_eq!(found.len(), 1);
        assert_eq!((found[0].field.as_str(), found[0].op.as_str()), ("v", "store"));
        assert_eq!(found[0].ordering, "Release");
        assert_eq!(found[0].context, "f");
    }

    #[test]
    fn compare_exchange_joins_success_and_failure_orderings() {
        let src = "impl Ring { fn push(&self) { self.slot.seq.compare_exchange(s, s + 1, Ordering::Acquire, Ordering::Relaxed); } }";
        let found = sites(src);
        assert_eq!(found[0].field, "seq");
        assert_eq!(found[0].ordering, "Acquire,Relaxed");
        assert_eq!(found[0].context, "Ring::push");
    }

    #[test]
    fn receiver_walks_back_over_index_and_call_groups() {
        let src = "fn f(&self) {\n    self.claim(sec).counts[kind.index()].fetch_add(1, Ordering::Relaxed);\n    self.0.fetch_add(1, Ordering::Relaxed);\n}";
        let found = sites(src);
        assert_eq!(found[0].field, "counts");
        assert_eq!(found[1].field, "0");
    }

    #[test]
    fn cfg_test_sites_are_exempt() {
        let src = "fn f(v: &AtomicU64) { v.load(Ordering::Acquire); }\n#[cfg(test)]\nmod tests {\n    fn t(v: &AtomicU64) { v.store(9, Ordering::Relaxed); }\n}";
        assert_eq!(sites(src).len(), 1);
    }

    #[test]
    fn cmp_ordering_matches_are_not_sites() {
        let src = "fn f(a: &U, b: &U) { if rank_cmp(a, b) == Ordering::Equal { heap.push(a); } }";
        assert!(sites(src).is_empty());
    }
}
