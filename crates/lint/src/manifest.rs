//! The `cargo-dep` rule: every dependency in every `Cargo.toml` must
//! resolve *inside* this workspace.
//!
//! This subsumes the hermeticity-guard integration test (a dependency
//! must be a `path` dependency or a `workspace = true` reference) and
//! extends it two ways:
//!
//! * a `path` dependency's target must actually exist, contain a
//!   `Cargo.toml`, and stay inside the workspace root (no escaping via
//!   `../../elsewhere`);
//! * a `workspace = true` reference must name a key that the root
//!   `[workspace.dependencies]` table defines (as a path dependency).
//!
//! Suppression uses the TOML comment form of the escape hatch:
//! `# lint: allow(cargo-dep)` on the offending line.

use crate::report::Finding;
use std::collections::BTreeSet;
use std::path::Path;

/// Parsed summary of one manifest: package name (if any) and the keys
/// its `[workspace.dependencies]` table defines.
#[derive(Debug, Default)]
pub struct ManifestInfo {
    /// `[package] name = "…"`.
    pub package_name: Option<String>,
    /// Keys of `[workspace.dependencies]` (root manifest only).
    pub workspace_dep_keys: BTreeSet<String>,
}

/// Extracts [`ManifestInfo`] from manifest text (line-oriented; the
/// workspace's manifests are all in the plain one-key-per-line style).
pub fn manifest_info(text: &str) -> ManifestInfo {
    let mut info = ManifestInfo::default();
    let mut section = String::new();
    for raw in text.lines() {
        let line = strip_toml_comment(raw).trim().to_string();
        if line.is_empty() {
            continue;
        }
        if line.starts_with('[') {
            section = line.trim_matches(|c| c == '[' || c == ']').to_string();
            continue;
        }
        if let Some((key, value)) = line.split_once('=') {
            let key = key.trim();
            if section == "package" && key == "name" {
                info.package_name = Some(value.trim().trim_matches('"').to_string());
            }
            if section == "workspace.dependencies" {
                info.workspace_dep_keys.insert(key.trim_matches('"').to_string());
            }
        }
    }
    info
}

/// Section headers whose entries are dependencies to police.
fn is_dependency_section(section: &str) -> bool {
    section == "dependencies"
        || section == "dev-dependencies"
        || section == "build-dependencies"
        || section == "workspace.dependencies"
        || (section.starts_with("target.") && section.ends_with("dependencies"))
}

/// A dotted dependency section like `[dependencies.foo]`, whose *keys*
/// form the spec.
fn dotted_dependency_section(section: &str) -> Option<&str> {
    for prefix in ["dependencies.", "dev-dependencies.", "build-dependencies.", "workspace.dependencies."]
    {
        if let Some(name) = section.strip_prefix(prefix) {
            return Some(name);
        }
    }
    None
}

fn strip_toml_comment(line: &str) -> &str {
    // Good enough for this tree: no `#` inside quoted values.
    match line.find('#') {
        Some(idx) => &line[..idx],
        None => line,
    }
}

fn line_allows(raw: &str) -> bool {
    raw.contains("lint: allow(") && raw.contains("cargo-dep")
}

/// The `path = "…"` value in a spec, if present.
fn path_value(spec: &str) -> Option<String> {
    let idx = spec.find("path")?;
    let rest = spec[idx + "path".len()..].trim_start();
    let rest = rest.strip_prefix('=')?.trim_start();
    let rest = rest.strip_prefix('"')?;
    Some(rest[..rest.find('"')?].to_string())
}

/// Checks one manifest. `rel_path` is workspace-relative; `root` is the
/// workspace root on disk (used to resolve and contain path deps);
/// `workspace_dep_keys` are the root `[workspace.dependencies]` keys.
/// Returns kept findings and the suppressed count.
pub fn check_manifest(
    rel_path: &str,
    text: &str,
    root: &Path,
    workspace_dep_keys: &BTreeSet<String>,
) -> (Vec<Finding>, usize) {
    let mut findings = Vec::new();
    let mut suppressed = 0;
    let manifest_dir = root.join(rel_path).parent().map(Path::to_path_buf).unwrap_or_default();

    let mut report = |line_no: usize, raw: &str, message: String| {
        if line_allows(raw) {
            suppressed += 1;
        } else {
            findings.push(Finding {
                file: rel_path.to_string(),
                line: line_no,
                rule: "cargo-dep".to_string(),
                message,
            });
        }
    };

    let mut section = String::new();
    // For `[dependencies.foo]` sections: (name, header line, header raw,
    // saw a hermetic key).
    let mut dotted: Option<(String, usize, String, bool)> = None;
    let close_dotted = |d: &mut Option<(String, usize, String, bool)>,
                            report: &mut dyn FnMut(usize, &str, String)| {
        if let Some((name, line_no, raw, hermetic)) = d.take() {
            if !hermetic {
                report(
                    line_no,
                    &raw,
                    format!("dependency `{name}` has no `path` or `workspace = true` source"),
                );
            }
        }
    };

    for (idx, raw) in text.lines().enumerate() {
        let line_no = idx + 1;
        let line = strip_toml_comment(raw).trim().to_string();
        if line.is_empty() {
            continue;
        }
        if line.starts_with('[') {
            close_dotted(&mut dotted, &mut report);
            section = line.trim_matches(|c| c == '[' || c == ']').to_string();
            if let Some(name) = dotted_dependency_section(&section) {
                dotted = Some((name.to_string(), line_no, raw.to_string(), false));
            }
            continue;
        }
        if let Some((_, _, _, hermetic)) = dotted.as_mut() {
            if let Some((key, value)) = line.split_once('=') {
                let key = key.trim();
                let value = value.trim();
                if key == "workspace" && value == "true" {
                    *hermetic = true;
                }
                if key == "path" {
                    *hermetic = true;
                    check_path_target(
                        value.trim_matches('"'),
                        &manifest_dir,
                        root,
                        line_no,
                        raw,
                        &mut report,
                    );
                }
            }
            continue;
        }
        if !is_dependency_section(&section) {
            continue;
        }
        let Some((key, spec)) = line.split_once('=') else { continue };
        let key = key.trim();
        let spec = spec.trim();
        // `foo.workspace = true` inline form.
        if let Some(name) = key.strip_suffix(".workspace") {
            if spec == "true" {
                check_workspace_ref(
                    name,
                    section == "workspace.dependencies",
                    workspace_dep_keys,
                    line_no,
                    raw,
                    &mut report,
                );
                continue;
            }
        }
        if let Some(path) = path_value(spec) {
            check_path_target(&path, &manifest_dir, root, line_no, raw, &mut report);
        } else if spec.contains("workspace = true") || spec.contains("workspace=true") {
            check_workspace_ref(
                key,
                section == "workspace.dependencies",
                workspace_dep_keys,
                line_no,
                raw,
                &mut report,
            );
        } else {
            report(
                line_no,
                raw,
                format!("dependency `{key}` is not an in-tree path (registry/git sources violate the hermetic-build policy)"),
            );
        }
    }
    close_dotted(&mut dotted, &mut report);
    (findings, suppressed)
}

/// A `path = "…"` target must exist, be a crate, and stay inside the
/// workspace root.
fn check_path_target(
    path: &str,
    manifest_dir: &Path,
    root: &Path,
    line_no: usize,
    raw: &str,
    report: &mut impl FnMut(usize, &str, String),
) {
    let target = manifest_dir.join(path);
    let Ok(resolved) = target.canonicalize() else {
        report(line_no, raw, format!("path dependency `{path}` does not resolve on disk"));
        return;
    };
    let Ok(root) = root.canonicalize() else {
        return; // cannot judge containment without a root
    };
    if !resolved.starts_with(&root) {
        report(line_no, raw, format!("path dependency `{path}` escapes the workspace root"));
    } else if !resolved.join("Cargo.toml").is_file() {
        report(line_no, raw, format!("path dependency `{path}` has no Cargo.toml"));
    }
}

/// A `workspace = true` reference must name a root
/// `[workspace.dependencies]` key.
fn check_workspace_ref(
    name: &str,
    in_workspace_deps_table: bool,
    workspace_dep_keys: &BTreeSet<String>,
    line_no: usize,
    raw: &str,
    report: &mut impl FnMut(usize, &str, String),
) {
    if in_workspace_deps_table {
        // `workspace = true` inside [workspace.dependencies] itself
        // would be circular — that table is what gets referenced.
        report(
            line_no,
            raw,
            format!("`{name}` uses workspace = true inside [workspace.dependencies]"),
        );
        return;
    }
    if !workspace_dep_keys.contains(name) {
        report(
            line_no,
            raw,
            format!("`{name}` references [workspace.dependencies] but the root defines no such key"),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn keys(entries: &[&str]) -> BTreeSet<String> {
        entries.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn registry_dependency_is_flagged() {
        let (findings, _) = check_manifest(
            "crates/x/Cargo.toml",
            "[dependencies]\nserde = \"1.0\"\n",
            Path::new("/nonexistent-root"),
            &keys(&[]),
        );
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].rule, "cargo-dep");
        assert_eq!(findings[0].line, 2);
    }

    #[test]
    fn allow_comment_suppresses() {
        let (findings, suppressed) = check_manifest(
            "crates/x/Cargo.toml",
            "[dependencies]\nserde = \"1.0\" # lint: allow(cargo-dep)\n",
            Path::new("/nonexistent-root"),
            &keys(&[]),
        );
        assert!(findings.is_empty());
        assert_eq!(suppressed, 1);
    }

    #[test]
    fn workspace_ref_must_exist_in_root_table() {
        let (findings, _) = check_manifest(
            "crates/x/Cargo.toml",
            "[dependencies]\ngood.workspace = true\nbad.workspace = true\n",
            Path::new("/nonexistent-root"),
            &keys(&["good"]),
        );
        assert_eq!(findings.len(), 1);
        assert!(findings[0].message.contains("bad"));
    }

    #[test]
    fn dotted_section_without_source_is_flagged() {
        let (findings, _) = check_manifest(
            "crates/x/Cargo.toml",
            "[dependencies.mystery]\nversion = \"2\"\n\n[features]\n",
            Path::new("/nonexistent-root"),
            &keys(&[]),
        );
        assert_eq!(findings.len(), 1);
        assert!(findings[0].message.contains("mystery"));
    }

    #[test]
    fn missing_path_target_is_flagged() {
        let (findings, _) = check_manifest(
            "crates/x/Cargo.toml",
            "[dependencies]\nghost = { path = \"../ghost\" }\n",
            Path::new("/nonexistent-root"),
            &keys(&[]),
        );
        assert_eq!(findings.len(), 1);
        assert!(findings[0].message.contains("does not resolve"));
    }

    #[test]
    fn non_dependency_sections_are_ignored() {
        let (findings, _) = check_manifest(
            "crates/x/Cargo.toml",
            "[package]\nname = \"x\"\nversion = \"1.0\"\n[features]\ndefault = []\n",
            Path::new("/nonexistent-root"),
            &keys(&[]),
        );
        assert!(findings.is_empty());
    }

    #[test]
    fn manifest_info_reads_name_and_workspace_keys() {
        let info = manifest_info(
            "[package]\nname = \"groupsa-x\"\n[workspace.dependencies]\nrand = { path = \"crates/compat/rand\" }\n",
        );
        assert_eq!(info.package_name.as_deref(), Some("groupsa-x"));
        assert!(info.workspace_dep_keys.contains("rand"));
    }
}
