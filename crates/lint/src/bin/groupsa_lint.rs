//! `groupsa-lint` — workspace static analysis for determinism,
//! panic-safety, hermeticity, and float-hygiene invariants.
//!
//! ```text
//! groupsa-lint [--root <dir>] [--format text|json] [--list-rules]
//! ```
//!
//! Exits `0` on a clean tree, `1` when any non-allowed finding exists,
//! `2` on usage or IO errors. `--format json` emits the schema in
//! DESIGN.md §11 (version, files_scanned, suppressed, findings[]).

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut format = "text".to_string();
    let mut root: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--format" => match args.next() {
                Some(f) if f == "text" || f == "json" => format = f,
                other => return usage(&format!("--format expects text|json, got {other:?}")),
            },
            "--root" => match args.next() {
                Some(dir) => root = Some(PathBuf::from(dir)),
                None => return usage("--root expects a directory"),
            },
            "--list-rules" => {
                for rule in groupsa_lint::RULES {
                    println!("{rule}");
                }
                return ExitCode::SUCCESS;
            }
            "--help" | "-h" => {
                println!("usage: groupsa-lint [--root <dir>] [--format text|json] [--list-rules]");
                return ExitCode::SUCCESS;
            }
            other => return usage(&format!("unknown argument {other:?}")),
        }
    }

    let root = match root {
        Some(dir) => dir,
        None => {
            let cwd = match std::env::current_dir() {
                Ok(d) => d,
                Err(e) => return fail(&format!("cannot read current dir: {e}")),
            };
            match groupsa_lint::find_workspace_root(&cwd) {
                Some(d) => d,
                None => return fail("no workspace root found above the current directory"),
            }
        }
    };

    let report = match groupsa_lint::run(&root) {
        Ok(r) => r,
        Err(e) => return fail(&format!("analysis failed: {e}")),
    };
    match format.as_str() {
        "json" => println!("{}", report.to_json_string()),
        _ => print!("{}", report.to_text()),
    }
    if report.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn usage(message: &str) -> ExitCode {
    eprintln!("groupsa-lint: {message}");
    eprintln!("usage: groupsa-lint [--root <dir>] [--format text|json] [--list-rules]");
    ExitCode::from(2)
}

fn fail(message: &str) -> ExitCode {
    eprintln!("groupsa-lint: {message}");
    ExitCode::from(2)
}
