//! `groupsa-lint` — workspace static analysis for determinism,
//! panic-safety, hermeticity, float-hygiene, and concurrency-discipline
//! invariants.
//!
//! ```text
//! groupsa-lint [--root <dir>] [--format text|json] [--diff <baseline.json>]
//!              [--dump-atomics] [--list-rules]
//! ```
//!
//! Without `--diff`: exits `0` on a clean tree, `1` when any
//! non-allowed finding exists. With `--diff <baseline.json>` the exit
//! code reflects **drift** against the committed report instead — new
//! findings, resolved findings, suppression-count changes, or a
//! file-count change all fail, so a new escape hatch can't slip in
//! just because the tree stayed "clean". `--dump-atomics` prints
//! suggested `ATOMIC_SITES` manifest rows for unmanifested atomic
//! sites. Exit `2` on usage or IO errors. `--format json` emits the
//! schema in DESIGN.md §11/§16 (version, files_scanned, suppressed,
//! timings[], findings[]).

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut format = "text".to_string();
    let mut root: Option<PathBuf> = None;
    let mut diff: Option<PathBuf> = None;
    let mut dump_atomics = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--format" => match args.next() {
                Some(f) if f == "text" || f == "json" => format = f,
                other => return usage(&format!("--format expects text|json, got {other:?}")),
            },
            "--root" => match args.next() {
                Some(dir) => root = Some(PathBuf::from(dir)),
                None => return usage("--root expects a directory"),
            },
            "--diff" => match args.next() {
                Some(path) => diff = Some(PathBuf::from(path)),
                None => return usage("--diff expects a baseline report path"),
            },
            "--dump-atomics" => dump_atomics = true,
            "--list-rules" => {
                for rule in groupsa_lint::RULES {
                    println!("{rule}");
                }
                return ExitCode::SUCCESS;
            }
            "--help" | "-h" => {
                println!(
                    "usage: groupsa-lint [--root <dir>] [--format text|json] \
                     [--diff <baseline.json>] [--dump-atomics] [--list-rules]"
                );
                return ExitCode::SUCCESS;
            }
            other => return usage(&format!("unknown argument {other:?}")),
        }
    }

    let root = match root {
        Some(dir) => dir,
        None => {
            let cwd = match std::env::current_dir() {
                Ok(d) => d,
                Err(e) => return fail(&format!("cannot read current dir: {e}")),
            };
            match groupsa_lint::find_workspace_root(&cwd) {
                Some(d) => d,
                None => return fail("no workspace root found above the current directory"),
            }
        }
    };

    if dump_atomics {
        return match groupsa_lint::dump_atomic_suggestions(&root) {
            Ok(rows) if rows.is_empty() => {
                eprintln!("groupsa-lint: every atomic site is manifested");
                ExitCode::SUCCESS
            }
            Ok(rows) => {
                println!("{rows}");
                ExitCode::SUCCESS
            }
            Err(e) => fail(&format!("analysis failed: {e}")),
        };
    }

    let report = match groupsa_lint::run(&root) {
        Ok(r) => r,
        Err(e) => return fail(&format!("analysis failed: {e}")),
    };
    match format.as_str() {
        "json" => println!("{}", report.to_json_string()),
        _ => print!("{}", report.to_text()),
    }

    if let Some(baseline_path) = diff {
        let baseline_text = match std::fs::read_to_string(&baseline_path) {
            Ok(t) => t,
            Err(e) => return fail(&format!("cannot read baseline {}: {e}", baseline_path.display())),
        };
        let baseline: groupsa_lint::Report = match groupsa_json::from_str(&baseline_text) {
            Ok(b) => b,
            Err(e) => return fail(&format!("baseline {} does not parse: {e}", baseline_path.display())),
        };
        let drift = report.drift_against(&baseline);
        return if drift.is_empty() {
            eprintln!("groupsa-lint: no drift against {}", baseline_path.display());
            ExitCode::SUCCESS
        } else {
            eprintln!(
                "groupsa-lint: lint state drifted from {} — regenerate it with \
                 `groupsa-lint --format json` if the change is intentional:",
                baseline_path.display()
            );
            for line in drift {
                eprintln!("  {line}");
            }
            ExitCode::FAILURE
        };
    }

    if report.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn usage(message: &str) -> ExitCode {
    eprintln!("groupsa-lint: {message}");
    eprintln!(
        "usage: groupsa-lint [--root <dir>] [--format text|json] [--diff <baseline.json>] \
         [--dump-atomics] [--list-rules]"
    );
    ExitCode::from(2)
}

fn fail(message: &str) -> ExitCode {
    eprintln!("groupsa-lint: {message}");
    ExitCode::from(2)
}
