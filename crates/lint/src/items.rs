//! Item-level parsing on top of the lexer.
//!
//! The lexer gives the rule engine a flat token stream; the
//! concurrency-discipline families (atomics manifest, lock order,
//! panic reachability) additionally need to know *which function* a
//! token sits in and where that function's body ends. This module
//! extracts exactly that: `fn` / `impl` / `struct` / `use` items with
//! brace-matched body ranges, plus the `Type::method` symbol of every
//! function defined inside an `impl` block.
//!
//! It is deliberately not a Rust parser. Generics are skipped by
//! counting angle brackets, bodies by counting braces (sound because
//! the lexer already swallowed strings, chars, and comments), and name
//! resolution is left to [`crate::callgraph`]'s approximation. That is
//! the same altitude/robustness trade the lexer makes, and it is
//! enough to attribute every token in the workspace to its enclosing
//! symbol.

use crate::lexer::{LexedFile, Token, TokenKind};

/// What kind of item an [`Item`] is.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ItemKind {
    /// A function or method (`fn name(..) { .. }` or a bodyless trait
    /// signature).
    Fn,
    /// A `struct` definition.
    Struct,
    /// An `impl` block (inherent or trait).
    Impl,
    /// A `use` declaration.
    Use,
}

/// One extracted item with its body's token range.
#[derive(Clone, Debug)]
pub struct Item {
    /// The item kind.
    pub kind: ItemKind,
    /// The bare name (`push`, `Engine`, …). For [`ItemKind::Impl`] this
    /// is the self type's last path segment; for [`ItemKind::Use`] the
    /// root segment.
    pub name: String,
    /// The qualified symbol: `Type::name` for functions inside an
    /// `impl`, otherwise the same as `name`.
    pub symbol: String,
    /// 1-based line of the introducing keyword.
    pub line: usize,
    /// Inclusive token-index range of the `{ … }` body (braces
    /// included), or `None` for bodyless items (`fn f();`, `struct S;`,
    /// tuple structs, `use`).
    pub body: Option<(usize, usize)>,
    /// Whether the item sits inside a `#[cfg(test)]` region.
    pub in_test: bool,
}

impl Item {
    /// Whether token index `i` lies inside this item's body.
    pub fn contains(&self, i: usize) -> bool {
        self.body.is_some_and(|(lo, hi)| lo <= i && i <= hi)
    }
}

/// Tracks `#[cfg(test)]`-attributed items so rules can exempt in-file
/// test modules. Feed every token index in order via [`Self::observe`].
#[derive(Default)]
pub struct TestRegionTracker {
    /// A `#[cfg(test)]` attribute was seen and its item hasn't started.
    pending: bool,
    /// Brace depth inside the current `#[cfg(test)]` item, if any.
    depth: Option<usize>,
}

impl TestRegionTracker {
    /// Feeds token `i`; returns whether it lies inside a test region.
    pub fn observe(&mut self, toks: &[Token], i: usize) -> bool {
        let t = &toks[i];
        if let Some(depth) = self.depth.as_mut() {
            if t.kind == TokenKind::Punct {
                match t.text.as_str() {
                    "{" => *depth += 1,
                    "}" => {
                        *depth -= 1;
                        if *depth == 0 {
                            self.depth = None;
                        }
                    }
                    _ => {}
                }
            }
            return true;
        }
        // `#` `[` `cfg` `(` `test` … — the attribute that opens a test
        // region (matches `cfg(test)` and `cfg(all(test, …))`, but not
        // `cfg(not(test))`, which marks *non*-test code).
        let cfg_test = t.kind == TokenKind::Punct
            && t.text == "#"
            && punct_at(toks, i + 1, "[")
            && ident_at(toks, i + 2, "cfg")
            && punct_at(toks, i + 3, "(")
            && (ident_at(toks, i + 4, "test")
                || ((ident_at(toks, i + 4, "all") || ident_at(toks, i + 4, "any"))
                    && toks[i + 5..]
                        .iter()
                        .take(4)
                        .any(|x| x.kind == TokenKind::Ident && x.text == "test")));
        if cfg_test {
            self.pending = true;
            return false;
        }
        if self.pending && t.kind == TokenKind::Punct {
            if t.text == "{" {
                self.pending = false;
                self.depth = Some(1);
                return true;
            }
            if t.text == ";" {
                // `#[cfg(test)] mod tests;` — out-of-line test module;
                // its file lives under a path the tests-dir check covers.
                self.pending = false;
            }
        }
        false
    }
}

/// Extracts every item from a lexed file. Items arrive in source
/// order; nested functions are separate items.
pub fn parse_items(lexed: &LexedFile) -> Vec<Item> {
    let toks = &lexed.tokens;
    let mut items = Vec::new();
    let mut tracker = TestRegionTracker::default();
    for i in 0..toks.len() {
        let in_test = tracker.observe(toks, i);
        let t = &toks[i];
        if t.kind != TokenKind::Ident {
            continue;
        }
        match t.text.as_str() {
            "fn" => {
                // `fn` the item keyword, not the `fn(..)` pointer type:
                // the next token must be the function's name.
                let Some(name_tok) = toks.get(i + 1) else { continue };
                if name_tok.kind != TokenKind::Ident {
                    continue;
                }
                let body = find_body(toks, i + 2).and_then(|open| {
                    match_brace(toks, open).map(|close| (open, close))
                });
                items.push(Item {
                    kind: ItemKind::Fn,
                    name: name_tok.text.clone(),
                    symbol: name_tok.text.clone(), // qualified in the post-pass
                    line: t.line,
                    body,
                    in_test,
                });
            }
            "impl" => {
                let Some(open) = find_body(toks, i + 1) else { continue };
                let Some(close) = match_brace(toks, open) else { continue };
                let name = impl_type_name(&toks[i + 1..open]).unwrap_or_default();
                if name.is_empty() {
                    continue;
                }
                items.push(Item {
                    kind: ItemKind::Impl,
                    symbol: name.clone(),
                    name,
                    line: t.line,
                    body: Some((open, close)),
                    in_test,
                });
            }
            "struct" => {
                let Some(name_tok) = toks.get(i + 1) else { continue };
                if name_tok.kind != TokenKind::Ident {
                    continue;
                }
                let body = find_body(toks, i + 2).and_then(|open| {
                    match_brace(toks, open).map(|close| (open, close))
                });
                items.push(Item {
                    kind: ItemKind::Struct,
                    name: name_tok.text.clone(),
                    symbol: name_tok.text.clone(),
                    line: t.line,
                    body,
                    in_test,
                });
            }
            "use" => {
                // Skip closure captures (`move`) — `use` as an item is
                // preceded by nothing interesting; a false positive here
                // only adds a harmless Use item anyway.
                let Some(root) = toks.get(i + 1).filter(|r| r.kind == TokenKind::Ident)
                else {
                    continue;
                };
                items.push(Item {
                    kind: ItemKind::Use,
                    name: root.text.clone(),
                    symbol: root.text.clone(),
                    line: t.line,
                    body: None,
                    in_test,
                });
            }
            _ => {}
        }
    }
    qualify_methods(&mut items);
    items
}

/// Post-pass: give every `fn` inside an `impl` block its `Type::name`
/// symbol (innermost impl wins — nested impls don't occur here, but
/// the innermost rule is the safe one).
fn qualify_methods(items: &mut [Item]) {
    let impls: Vec<(String, usize, usize)> = items
        .iter()
        .filter(|it| it.kind == ItemKind::Impl)
        .filter_map(|it| it.body.map(|(lo, hi)| (it.name.clone(), lo, hi)))
        .collect();
    for it in items.iter_mut().filter(|it| it.kind == ItemKind::Fn) {
        // The fn's position is its body start when it has one; a
        // bodyless trait signature still sits between its impl's
        // braces, so fall back to any contained token — we only have
        // the body range, so bodyless fns outside impls keep the bare
        // name (they have no call sites to attribute anyway).
        let Some((pos, _)) = it.body else { continue };
        let innermost = impls
            .iter()
            .filter(|(_, lo, hi)| *lo < pos && pos <= *hi)
            .min_by_key(|(_, lo, hi)| hi - lo);
        if let Some((ty, _, _)) = innermost {
            it.symbol = format!("{ty}::{}", it.name);
        }
    }
}

/// The symbol of the innermost `fn` whose body contains token `i`, if
/// any.
pub fn enclosing_symbol(items: &[Item], i: usize) -> Option<&str> {
    items
        .iter()
        .filter(|it| it.kind == ItemKind::Fn && it.contains(i))
        .min_by_key(|it| {
            let (lo, hi) = it.body.expect("contains() implies a body");
            hi - lo
        })
        .map(|it| it.symbol.as_str())
}

/// Finds the token index of the `{` opening an item body, scanning
/// from `from` past the signature (parens/brackets balanced). Returns
/// `None` on a `;` at depth 0 first — a bodyless item.
fn find_body(toks: &[Token], from: usize) -> Option<usize> {
    let mut depth = 0i32;
    for (off, t) in toks[from..].iter().enumerate() {
        if t.kind != TokenKind::Punct {
            continue;
        }
        match t.text.as_str() {
            "(" | "[" => depth += 1,
            ")" | "]" => depth -= 1,
            "{" if depth == 0 => return Some(from + off),
            ";" if depth == 0 => return None,
            _ => {}
        }
    }
    None
}

/// Matches the `{` at `open` to its closing `}`; returns its index.
fn match_brace(toks: &[Token], open: usize) -> Option<usize> {
    let mut depth = 0i32;
    for (off, t) in toks[open..].iter().enumerate() {
        if t.kind != TokenKind::Punct {
            continue;
        }
        match t.text.as_str() {
            "{" => depth += 1,
            "}" => {
                depth -= 1;
                if depth == 0 {
                    return Some(open + off);
                }
            }
            _ => {}
        }
    }
    None
}

/// The self-type name of an `impl` header (the tokens between `impl`
/// and its `{`): the last path segment before the generics of the type
/// after `for` when present (`impl Trait for Type`), else of the type
/// itself (`impl Type`). Generic parameter lists are skipped by angle
/// counting (`>>` closes two).
fn impl_type_name(header: &[Token]) -> Option<String> {
    // Everything after the last top-level `for` is the self type; with
    // no `for`, the whole header is. (`for` also appears inside HRTB
    // `for<'a>` bounds — those sit inside `<…>` and are skipped.)
    let mut angle = 0i32;
    let mut ty_start = 0;
    for (i, t) in header.iter().enumerate() {
        match (&t.kind, t.text.as_str()) {
            (TokenKind::Punct, "<") => angle += 1,
            (TokenKind::Punct, ">") => angle -= 1,
            (TokenKind::Punct, "<<") => angle += 2,
            (TokenKind::Punct, ">>") => angle -= 2,
            (TokenKind::Ident, "for") if angle == 0 => ty_start = i + 1,
            _ => {}
        }
    }
    // Last identifier at angle depth 0 in the self-type region: the
    // type's final path segment (`snapshot::Reader` → `Reader`,
    // `FrozenModel<T>` → `FrozenModel`).
    let mut angle = 0i32;
    let mut name = None;
    for t in &header[ty_start..] {
        match (&t.kind, t.text.as_str()) {
            (TokenKind::Punct, "<") => angle += 1,
            (TokenKind::Punct, ">") => angle -= 1,
            (TokenKind::Punct, "<<") => angle += 2,
            (TokenKind::Punct, ">>") => angle -= 2,
            (TokenKind::Ident, s) if angle == 0 && s != "dyn" && s != "mut" => {
                name = Some(s.to_string());
            }
            _ => {}
        }
    }
    name
}

fn ident_at(toks: &[Token], i: usize, text: &str) -> bool {
    toks.get(i).is_some_and(|t| t.kind == TokenKind::Ident && t.text == text)
}

fn punct_at(toks: &[Token], i: usize, text: &str) -> bool {
    toks.get(i).is_some_and(|t| t.kind == TokenKind::Punct && t.text == text)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn items(src: &str) -> Vec<Item> {
        parse_items(&lex(src))
    }

    #[test]
    fn free_fn_body_is_brace_matched() {
        let its = items("fn f(x: u8) -> u8 { if x > 0 { x } else { 0 } }\nfn g();");
        let f = &its[0];
        assert_eq!((f.kind, f.name.as_str(), f.line), (ItemKind::Fn, "f", 1));
        let (lo, hi) = f.body.unwrap();
        assert!(lo < hi);
        let g = &its[1];
        assert_eq!(g.name, "g");
        assert!(g.body.is_none(), "`fn g();` is bodyless");
    }

    #[test]
    fn impl_methods_get_qualified_symbols() {
        let src = "impl<T: Store> Slot<T> {\n    fn load(&self) -> T { self.inner() }\n    fn inner(&self) -> T { todo!() }\n}\nimpl Drop for Guard { fn drop(&mut self) {} }\nfn free() {}";
        let its = items(src);
        let syms: Vec<&str> = its
            .iter()
            .filter(|i| i.kind == ItemKind::Fn)
            .map(|i| i.symbol.as_str())
            .collect();
        assert_eq!(syms, vec!["Slot::load", "Slot::inner", "Guard::drop", "free"]);
    }

    #[test]
    fn impl_trait_for_qualified_path_takes_last_segment() {
        let src = "impl std::fmt::Debug for ring::RecordRing { fn fmt(&self) {} }";
        let its = items(src);
        assert_eq!(its[0].name, "RecordRing");
        assert_eq!(its[1].symbol, "RecordRing::fmt");
    }

    #[test]
    fn nested_fns_are_separate_items() {
        let src = "fn outer() {\n    fn inner(v: Vec<u8>) -> usize { v.len() }\n    inner(vec![]);\n}";
        let its = items(src);
        let names: Vec<&str> = its.iter().map(|i| i.name.as_str()).collect();
        assert_eq!(names, vec!["outer", "inner"]);
        // outer's body contains inner's body.
        let (olo, ohi) = its[0].body.unwrap();
        let (ilo, ihi) = its[1].body.unwrap();
        assert!(olo < ilo && ihi < ohi);
    }

    #[test]
    fn enclosing_symbol_picks_the_innermost_fn() {
        let src = "impl Engine {\n    fn submit(&self) {\n        fn helper() { marker(); }\n        helper();\n    }\n}";
        let lexed = lex(src);
        let its = parse_items(&lexed);
        let marker = lexed
            .tokens
            .iter()
            .position(|t| t.text == "marker")
            .unwrap();
        assert_eq!(enclosing_symbol(&its, marker), Some("Engine::helper"));
        let helper_call = lexed
            .tokens
            .iter()
            .rposition(|t| t.text == "helper")
            .unwrap();
        assert_eq!(enclosing_symbol(&its, helper_call), Some("Engine::submit"));
    }

    #[test]
    fn fn_pointer_types_are_not_items() {
        let its = items("fn takes(cb: fn(usize) -> u8) { cb(1); }");
        assert_eq!(its.len(), 1);
        assert_eq!(its[0].name, "takes");
    }

    #[test]
    fn cfg_test_items_are_marked() {
        let src = "fn prod() {}\n#[cfg(test)]\nmod tests {\n    fn helper() {}\n}";
        let its = items(src);
        assert!(!its[0].in_test);
        assert!(its[1].in_test, "fn inside #[cfg(test)] mod is a test item");
    }

    #[test]
    fn where_clauses_and_return_generics_do_not_confuse_body_start() {
        let src = "fn f<T>(x: T) -> Box<dyn Fn() -> usize> where T: Clone { Box::new(|| 1) }";
        let its = items(src);
        let (lo, _) = its[0].body.unwrap();
        // The body must start after the where clause, not at the
        // closure's brace… the first `{` at bracket depth 0 IS the body.
        assert!(lo > 10);
    }

    #[test]
    fn struct_and_use_items_are_recorded() {
        let src = "use std::sync::Arc;\nstruct S { x: u8 }\nstruct T(u8);";
        let its = items(src);
        assert_eq!(its[0].kind, ItemKind::Use);
        assert_eq!(its[0].name, "std");
        assert_eq!(its[1].kind, ItemKind::Struct);
        assert!(its[1].body.is_some());
        assert_eq!(its[2].name, "T");
        assert!(its[2].body.is_none(), "tuple struct has no brace body");
    }
}
